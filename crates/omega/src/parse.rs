//! A parser for the Omega-library textual syntax for sets and relations.
//!
//! The grammar accepted is a practical subset of the Omega calculator's:
//!
//! ```text
//! relation := '{' tuple ('->' tuple)? (':' formula)? '}'
//! tuple    := '[' ident (',' ident)* ']'   |   '[' ']'
//! formula  := clause ('||' clause)*                 -- union of conjuncts
//! clause   := atom ('&&' atom)*
//! atom     := 'exists' '(' ident+ ':' clause ')'    -- existentials
//!           | expr (relop expr)+                    -- comparison chains
//! relop    := '=' '==' '<=' '<' '>=' '>'
//! expr     := linear integer expression; juxtaposition multiplies (2i)
//! ```
//!
//! Identifiers not bound by a tuple or an `exists` are symbolic parameters.

use crate::conjunct::{Conjunct, Normalized};
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::var::Var;
use std::fmt;
use std::str::FromStr;

/// Error produced when parsing a set or relation from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// Byte offset in the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    pub(crate) fn expected_set() -> Self {
        ParseError::new("expected a set, found a relation (`->` tuple)", 0)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

fn lex(s: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let b = s.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < b.len()
                && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'\'')
            {
                j += 1;
            }
            out.push((Tok::Ident(s[i..j].to_string()), start));
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i;
            while j < b.len() && (b[j] as char).is_ascii_digit() {
                j += 1;
            }
            let v: i64 = s[i..j]
                .parse()
                .map_err(|_| ParseError::new("integer literal too large", start))?;
            out.push((Tok::Int(v), start));
            i = j;
        } else {
            let two = if i + 1 < b.len() { &s[i..i + 2] } else { "" };
            let sym: &'static str = match two {
                "->" => "->",
                "&&" => "&&",
                "||" => "||",
                "<=" => "<=",
                ">=" => ">=",
                "==" => "=",
                _ => match c {
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ':' => ":",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    _ => return Err(ParseError::new(format!("unexpected character '{c}'"), i)),
                },
            };
            i += sym.len();
            out.push((Tok::Sym(sym), start));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    in_names: Vec<String>,
    out_names: Vec<String>,
    params: Vec<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, sym: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(leak(sym))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat(sym) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected '{sym}'"), self.offset()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(ParseError::new("expected identifier", off)),
        }
    }

    fn tuple(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect("[")?;
        let mut names = Vec::new();
        if !self.eat("]") {
            loop {
                names.push(self.ident()?);
                if self.eat("]") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(names)
    }

    fn resolve(&mut self, name: &str, exists: &[(String, Var)]) -> Var {
        if let Some((_, v)) = exists.iter().rev().find(|(n, _)| n == name) {
            return *v;
        }
        if let Some(i) = self.in_names.iter().position(|n| n == name) {
            return Var::In(i as u32);
        }
        if let Some(i) = self.out_names.iter().position(|n| n == name) {
            return Var::Out(i as u32);
        }
        if let Some(i) = self.params.iter().position(|n| n == name) {
            return Var::Param(i as u32);
        }
        self.params.push(name.to_string());
        Var::Param(self.params.len() as u32 - 1)
    }

    fn formula(&mut self, rel: &mut Vec<Conjunct>) -> Result<(), ParseError> {
        loop {
            let mut c = Conjunct::new();
            let mut exists = Vec::new();
            self.clause(&mut c, &mut exists)?;
            rel.push(c);
            if !self.eat("||") {
                break;
            }
        }
        Ok(())
    }

    fn clause(
        &mut self,
        c: &mut Conjunct,
        exists: &mut Vec<(String, Var)>,
    ) -> Result<(), ParseError> {
        loop {
            self.atom(c, exists)?;
            if !self.eat("&&") {
                break;
            }
        }
        Ok(())
    }

    fn atom(
        &mut self,
        c: &mut Conjunct,
        exists: &mut Vec<(String, Var)>,
    ) -> Result<(), ParseError> {
        if let Some(Tok::Ident(id)) = self.peek() {
            // `TRUE` / `FALSE` are printed by `Display` for the empty
            // conjunct and the empty union; accept them back for roundtrip.
            if id == "TRUE" {
                self.pos += 1;
                return Ok(());
            }
            if id == "FALSE" {
                self.pos += 1;
                c.add_geq(LinExpr::constant(-1));
                return Ok(());
            }
            if id == "exists" {
                self.pos += 1;
                self.expect("(")?;
                let depth = exists.len();
                loop {
                    let name = self.ident()?;
                    exists.push((name, c.fresh_exist()));
                    if self.eat(":") {
                        break;
                    }
                    self.expect(",")?;
                }
                self.clause(c, exists)?;
                self.expect(")")?;
                exists.truncate(depth);
                return Ok(());
            }
        }
        // Comparison chain.
        let mut lhs = self.expr(c, exists)?;
        let mut any = false;
        while let Some(Tok::Sym(s @ ("=" | "<=" | "<" | ">=" | ">"))) = self.peek() {
            let op = *s;
            let off = self.offset();
            self.pos += 1;
            let rhs = self.expr(c, exists)?;
            any = true;
            let overflow = |_| ParseError::new("coefficient overflow", off);
            match op {
                "=" => c.add_eq(lhs.try_sub(&rhs).map_err(overflow)?),
                "<=" => c.add_geq(rhs.try_sub(&lhs).map_err(overflow)?),
                "<" => {
                    let mut e = rhs.try_sub(&lhs).map_err(overflow)?;
                    e.try_add_constant(-1).map_err(overflow)?;
                    c.add_geq(e);
                }
                ">=" => c.add_geq(lhs.try_sub(&rhs).map_err(overflow)?),
                ">" => {
                    let mut e = lhs.try_sub(&rhs).map_err(overflow)?;
                    e.try_add_constant(-1).map_err(overflow)?;
                    c.add_geq(e);
                }
                _ => unreachable!(),
            }
            lhs = rhs;
        }
        if !any {
            return Err(ParseError::new(
                "expected comparison operator",
                self.offset(),
            ));
        }
        Ok(())
    }

    fn expr(&mut self, c: &mut Conjunct, exists: &[(String, Var)]) -> Result<LinExpr, ParseError> {
        let mut e = self.term(c, exists)?;
        loop {
            let off = self.offset();
            let overflow = |_| ParseError::new("coefficient overflow", off);
            if self.eat("+") {
                let t = self.term(c, exists)?;
                e.try_add_scaled(&t, 1).map_err(overflow)?;
            } else if self.eat("-") {
                let t = self.term(c, exists)?;
                e.try_add_scaled(&t, -1).map_err(overflow)?;
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn term(&mut self, c: &mut Conjunct, exists: &[(String, Var)]) -> Result<LinExpr, ParseError> {
        let mut e = self.factor(c, exists)?;
        loop {
            let juxtaposed = matches!(self.peek(), Some(Tok::Ident(id)) if id != "exists")
                || self.peek() == Some(&Tok::Sym("("));
            if self.eat("*") || juxtaposed {
                let off = self.offset();
                let f = self.factor(c, exists)?;
                e = lin_mul(&e, &f)
                    .map_err(|_| ParseError::new("coefficient overflow", off))?
                    .ok_or_else(|| ParseError::new("nonlinear product", off))?;
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn factor(
        &mut self,
        c: &mut Conjunct,
        exists: &[(String, Var)],
    ) -> Result<LinExpr, ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(LinExpr::constant(v)),
            Some(Tok::Ident(name)) => Ok(LinExpr::var(self.resolve(&name, exists))),
            Some(Tok::Sym("-")) => {
                let f = self.factor(c, exists)?;
                f.try_negated()
                    .map_err(|_| ParseError::new("coefficient overflow", off))
            }
            Some(Tok::Sym("(")) => {
                let e = self.expr(c, exists)?;
                self.expect(")")?;
                Ok(e)
            }
            _ => Err(ParseError::new("expected expression", off)),
        }
    }
}

/// Product of two linear expressions; `Ok(None)` if both are non-constant,
/// `Err` if the coefficient arithmetic overflows.
fn lin_mul(a: &LinExpr, b: &LinExpr) -> Result<Option<LinExpr>, crate::OmegaError> {
    if a.is_constant() {
        b.try_scaled(a.constant_term()).map(Some)
    } else if b.is_constant() {
        a.try_scaled(b.constant_term()).map(Some)
    } else {
        Ok(None)
    }
}

fn leak(s: &str) -> &'static str {
    // Only called with the fixed symbol strings of this module.
    match s {
        "->" => "->",
        "&&" => "&&",
        "||" => "||",
        "<=" => "<=",
        ">=" => ">=",
        "{" => "{",
        "}" => "}",
        "[" => "[",
        "]" => "]",
        "(" => "(",
        ")" => ")",
        "," => ",",
        ":" => ":",
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "=" => "=",
        "<" => "<",
        ">" => ">",
        _ => unreachable!("unknown symbol {s}"),
    }
}

pub(crate) fn parse_relation(input: &str) -> Result<Relation, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        in_names: Vec::new(),
        out_names: Vec::new(),
        params: Vec::new(),
    };
    p.expect("{")?;
    p.in_names = p.tuple()?;
    if p.eat("->") {
        p.out_names = p.tuple()?;
    }
    let mut conjuncts = Vec::new();
    if p.eat(":") {
        p.formula(&mut conjuncts)?;
    } else {
        conjuncts.push(Conjunct::new());
    }
    p.expect("}")?;
    if p.pos != p.toks.len() {
        return Err(ParseError::new("trailing input", p.offset()));
    }
    // Re-map parameters from appearance order to sorted order.
    let mut sorted = p.params.clone();
    sorted.sort();
    sorted.dedup();
    let remap: Vec<u32> = p
        .params
        .iter()
        .map(|n| sorted.iter().position(|m| m == n).unwrap() as u32)
        .collect();
    let mut rel = Relation::universe(p.in_names.len() as u32, p.out_names.len() as u32)
        .with_in_names(p.in_names.clone())
        .with_out_names(p.out_names.clone());
    for name in &sorted {
        rel.ensure_param(name);
    }
    rel.conjuncts_mut().clear();
    for c in conjuncts {
        let mut c = c.rename(|v| match v {
            Var::Param(i) => Var::Param(remap[i as usize]),
            v => v,
        });
        // `normalize` strips constant atoms, so its verdict must be
        // honored here: a contradictory conjunct (`FALSE`, `1 = 0`, …)
        // contributes nothing to the union rather than collapsing to the
        // universe conjunct.
        if c.normalize() != Normalized::False {
            rel.add_conjunct(c);
        }
    }
    Ok(rel)
}

impl FromStr for Relation {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_relation(s)
    }
}

impl FromStr for Set {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rel = parse_relation(s)?;
        if rel.n_out() != 0 {
            return Err(ParseError::new("expected a set, found a relation", 0));
        }
        Ok(Set::from_relation(rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_set() {
        let s: Set = "{[i] : 1 <= i <= 10}".parse().unwrap();
        assert!(s.contains(&[1], &[]));
        assert!(s.contains(&[10], &[]));
        assert!(!s.contains(&[11], &[]));
    }

    #[test]
    fn parse_relation_with_params() {
        let r: Relation = "{[i,j] -> [p] : 25p <= j - 1 && j - 1 <= 25p + 24 && 1 <= i <= N}"
            .parse()
            .unwrap();
        assert_eq!(r.n_in(), 2);
        assert_eq!(r.n_out(), 1);
        assert_eq!(r.params(), &["N".to_string()]);
        assert!(r.contains_pair(&[1, 26], &[1], &[("N", 5)]));
        assert!(!r.contains_pair(&[1, 26], &[0], &[("N", 5)]));
    }

    #[test]
    fn parse_union() {
        let s: Set = "{[i] : 1 <= i <= 3 || 7 <= i <= 9}".parse().unwrap();
        assert!(s.contains(&[2], &[]));
        assert!(!s.contains(&[5], &[]));
        assert!(s.contains(&[8], &[]));
    }

    #[test]
    fn parse_exists() {
        let s: Set = "{[i] : exists(a : i = 4a + 1) && 0 <= i <= 20}"
            .parse()
            .unwrap();
        let pts = s.enumerate(&[]).unwrap();
        assert_eq!(pts, vec![vec![1], vec![5], vec![9], vec![13], vec![17]]);
    }

    #[test]
    fn parse_nested_exists_and_juxtaposition() {
        let s: Set = "{[i] : exists(a, b : i = 2a && i = 3b)}".parse().unwrap();
        assert!(s.contains(&[6], &[]));
        assert!(!s.contains(&[4], &[]));
    }

    #[test]
    fn parse_chain_comparisons() {
        let s: Set = "{[i,j] : 1 <= i < j <= 5}".parse().unwrap();
        assert!(s.contains(&[1, 2], &[]));
        assert!(!s.contains(&[2, 2], &[]));
        assert!(s.contains(&[4, 5], &[]));
    }

    #[test]
    fn parse_parenthesized_and_negative() {
        let s: Set = "{[i] : i = -(2 + 3) + 2 * (4 - 1)}".parse().unwrap();
        assert!(s.contains(&[1], &[]));
    }

    #[test]
    fn parse_empty_tuple() {
        let s: Set = "{[] : N >= 1}".parse().unwrap();
        assert_eq!(s.arity(), 0);
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = "{[i] : i ^ 2}".parse::<Set>().unwrap_err();
        assert!(err.offset() > 0);
        assert!("{[i] : i * j}".parse::<Set>().is_err(), "nonlinear");
        assert!("{[i] : }".parse::<Set>().is_err());
        assert!("{[i] : 1 <= i".parse::<Set>().is_err());
    }

    #[test]
    fn set_rejects_relation_syntax() {
        assert!("{[i] -> [j] : j = i}".parse::<Set>().is_err());
    }
}
