//! The `dhpf-serve` binary: daemon mode by default, client mode with
//! `--send`.
//!
//! ```text
//! dhpf-serve [--addr HOST:PORT] [--cache-cap N]
//!            [--access-log FILE] [--trace-slow-ms N]  # run the daemon
//! dhpf-serve --addr HOST:PORT --send FILE             # send request lines
//! dhpf-serve --addr HOST:PORT --request '<json>'      # send one request
//! ```
//!
//! Client mode reads one JSON request per line (`-` = stdin), prints one
//! response line per request, and exits nonzero if any response carries
//! `"ok":false` — which makes the CI smoke test a grep-free shell one-liner.

use dhpf_serve::{send_lines, ServeConfig, Server};
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "dhpf-serve: long-running compile daemon with fleet-level cache reuse

daemon mode (default):
  --addr HOST:PORT   bind address (default 127.0.0.1:7421; port 0 = ephemeral)
  --cache-cap N      max memo entries per operation table (default 524288)
  --access-log FILE  append one structured JSON line per request to FILE
  --trace-slow-ms N  trace every compile; log the span tree of requests
                     taking >= N ms (0 = all) to the access log

client mode:
  --send FILE        connect to --addr, send each line of FILE (- = stdin)
  --request JSON     connect to --addr, send one request line
  exit status 1 if any response has \"ok\":false
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut config = ServeConfig::default();
    let mut send_file: Option<String> = None;
    let mut inline: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        let parse_int = |flag: &str, v: &str| -> Result<u64, ExitCode> {
            v.parse().map_err(|_| {
                eprintln!("{flag} needs an integer, got {v:?}");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--cache-cap" => {
                let v = value("--cache-cap");
                match parse_int("--cache-cap", &v) {
                    Ok(n) => config.cache_cap = n as usize,
                    Err(code) => return code,
                }
            }
            "--access-log" => config.access_log = Some(value("--access-log").into()),
            "--trace-slow-ms" => {
                let v = value("--trace-slow-ms");
                match parse_int("--trace-slow-ms", &v) {
                    Ok(n) => config.trace_slow_ms = Some(n),
                    Err(code) => return code,
                }
            }
            "--send" => send_file = Some(value("--send")),
            "--request" => inline.push(value("--request")),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if send_file.is_some() || !inline.is_empty() {
        return client(&addr, send_file.as_deref(), inline);
    }

    let cache_cap = config.cache_cap;
    let server = match Server::bind_with(&addr, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dhpf-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // Printed on one line so launchers (and the CI smoke job) can
        // scrape the resolved ephemeral port.
        Ok(bound) => println!("dhpf-serve: listening on {bound} (cache capacity {cache_cap})"),
        Err(e) => eprintln!("dhpf-serve: listening ({e})"),
    }
    if let Err(e) = server.serve() {
        eprintln!("dhpf-serve: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("dhpf-serve: shut down");
    ExitCode::SUCCESS
}

fn client(addr: &str, send_file: Option<&str>, mut requests: Vec<String>) -> ExitCode {
    if let Some(path) = send_file {
        let text = if path == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("dhpf-serve: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("dhpf-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        requests.extend(
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .map(String::from),
        );
    }
    if requests.is_empty() {
        eprintln!("dhpf-serve: nothing to send");
        return ExitCode::from(2);
    }
    let replies = match send_lines(addr, &requests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dhpf-serve: cannot reach {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = replies.len() == requests.len();
    for reply in &replies {
        println!("{reply}");
        // The response shape is flat, so this cheap check is reliable;
        // clients needing more should parse the JSON.
        if reply.contains("\"ok\":false") {
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
