//! The `dhpf-serve` wire protocol: JSON lines over TCP.
//!
//! One request per line, one response line per request, in order. The
//! serializer is hand-rolled on `dhpf_obs::json` (the workspace builds
//! fully offline — no serde), and the response vocabulary is deliberately
//! flat: stable [`ErrorCode`] spellings, counters, and optional artifact
//! strings, so any language's JSON library can consume it.
//!
//! ## Requests
//!
//! ```json
//! {"op":"compile","id":"r1","source":"program p\n…\nend\n",
//!  "options":{"threads":2,"deadline_ms":5000,"op_fuel":1000000,"loop_splitting":true},
//!  "want":["code","timing","trace"]}
//! {"op":"ping","id":"p1"}
//! {"op":"stats","id":"s1"}
//! {"op":"metrics","id":"m1"}
//! {"op":"metrics","id":"m2","format":"prometheus"}
//! {"op":"shutdown","id":"q1"}
//! ```
//!
//! `op` defaults to `"compile"` when a `source` field is present, so the
//! minimal netcat request is `{"source":"…"}`. Unknown fields are ignored
//! (forward compatibility); unknown `op`s and malformed JSON produce an
//! `E_PROTOCOL` error response and leave the connection open.
//!
//! ## Responses
//!
//! Success: `{"id":…,"ok":true,"units":…,"comm_events":…,"degradations":[…],
//! "cache":{…},"cache_hits_delta":…,"warm":…,"coalesced":…,"dedup_hits":…,
//! "governor":{…},"compile_ms":…,"code":…,"timing":…,"trace":…}`.
//! Failure: `{"id":…,"ok":false,"error":{"code":"E_…","message":…},…}` —
//! `error.code` is the stable machine contract; `message` is for humans.
//!
//! `want:["trace"]` adds a `trace` field: the single-line span tree of
//! this compilation (`dhpf_obs::export::span_tree_json` schema). The
//! `metrics` op returns the daemon's metric registry — structured JSON by
//! default, or the full Prometheus text exposition as one escaped string
//! field with `"format":"prometheus"` (scrape with netcat, unwrap, and
//! feed to any Prometheus ingester).

use dhpf_core::{CompileOptions, CompileRequest, CompileResponse, WireError};
use dhpf_obs::json::{escape, parse, Arr, Obj, Value};
use dhpf_obs::metrics::MetricsSnapshot;
use dhpf_omega::{Budget, ErrorCode};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Upper bound on per-request worker threads: protects the fleet from a
/// single request claiming the whole machine.
pub const MAX_THREADS: usize = 32;

/// A parsed protocol request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile HPF source under per-request options.
    Compile(CompileJob),
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: String,
    },
    /// Server-wide statistics snapshot.
    Stats {
        /// Echoed request id.
        id: String,
    },
    /// Metrics scrape: the daemon's whole metric registry.
    Metrics {
        /// Echoed request id.
        id: String,
        /// `true` for the Prometheus text exposition (as one escaped
        /// string field); `false` for structured JSON.
        prometheus: bool,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown {
        /// Echoed request id.
        id: String,
    },
}

/// One compile request as it arrived on the wire.
#[derive(Clone, Debug)]
pub struct CompileJob {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: String,
    /// HPF source text.
    pub source: String,
    /// Worker threads (clamped to `1..=MAX_THREADS`).
    pub threads: usize,
    /// Wall-clock deadline; `Some(0)` is rejected at admission with
    /// `E_BUDGET` (expired on arrival).
    pub deadline_ms: Option<u64>,
    /// Omega-operation fuel cap.
    pub op_fuel: Option<u64>,
    /// Figure-4 loop splitting (affects generated code, so part of the
    /// dedup key).
    pub loop_splitting: bool,
    /// Return the rendered code listing.
    pub want_code: bool,
    /// Return per-phase timing rows.
    pub want_timing: bool,
    /// Return the single-line span tree of this compilation.
    pub want_trace: bool,
}

impl CompileJob {
    /// The request-coalescing key: every field that can change the bytes
    /// of the response body. Requests that agree on this key are
    /// interchangeable, so concurrent duplicates fan out one compilation.
    pub fn dedup_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.source.hash(&mut h);
        self.loop_splitting.hash(&mut h);
        self.deadline_ms.hash(&mut h);
        self.op_fuel.hash(&mut h);
        self.want_code.hash(&mut h);
        self.want_timing.hash(&mut h);
        self.want_trace.hash(&mut h);
        h.finish()
    }

    /// The warm-cache key: just the unit identity (source + codegen
    /// options), ignoring budgets and artifact wants — any earlier
    /// compilation of the same unit leaves the memo tables warm for this
    /// one.
    pub fn warm_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.source.hash(&mut h);
        self.loop_splitting.hash(&mut h);
        h.finish()
    }

    /// Lowers the wire job to a typed [`CompileRequest`].
    pub fn to_request(&self) -> CompileRequest {
        let mut budget = Budget::new();
        budget.deadline_ms = self.deadline_ms;
        budget.op_fuel = self.op_fuel;
        let opts = CompileOptions::new()
            .threads(self.threads.clamp(1, MAX_THREADS))
            .loop_splitting(self.loop_splitting)
            .budget(budget);
        CompileRequest::new(self.source.clone())
            .options(opts)
            .code(self.want_code)
            .timing(self.want_timing)
            .trace(self.want_trace)
    }
}

fn proto_err(id: &str, msg: impl Into<String>) -> (String, WireError) {
    (
        id.to_string(),
        WireError {
            code: ErrorCode::Protocol,
            message: msg.into(),
        },
    )
}

/// Parses one request line. On error, returns the echoable id (empty if
/// the line was unparseable) plus a typed `E_PROTOCOL` [`WireError`].
pub fn parse_request(line: &str) -> Result<Request, (String, WireError)> {
    let v = parse(line).map_err(|e| proto_err("", format!("malformed JSON: {e}")))?;
    if v.as_obj().is_none() {
        return Err(proto_err("", "request must be a JSON object"));
    }
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let op = match v.get("op").and_then(Value::as_str) {
        Some(op) => op.to_string(),
        None if v.get("source").is_some() => "compile".to_string(),
        None => {
            return Err(proto_err(
                &id,
                "missing \"op\" (and no \"source\" to imply compile)",
            ))
        }
    };
    match op.as_str() {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "metrics" => {
            let prometheus = match v.get("format").and_then(Value::as_str) {
                None | Some("json") => false,
                Some("prometheus") => true,
                Some(other) => {
                    return Err(proto_err(&id, format!("unknown metrics format {other:?}")))
                }
            };
            Ok(Request::Metrics { id, prometheus })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        "compile" => {
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| proto_err(&id, "compile request needs a string \"source\""))?
                .to_string();
            let opts = v.get("options");
            let get_u64 = |key: &str| -> Option<u64> {
                opts.and_then(|o| o.get(key))
                    .and_then(Value::as_f64)
                    .map(|f| f.max(0.0) as u64)
            };
            let get_bool = |key: &str, default: bool| -> bool {
                match opts.and_then(|o| o.get(key)) {
                    Some(Value::Bool(b)) => *b,
                    _ => default,
                }
            };
            let mut want_code = false;
            let mut want_timing = false;
            let mut want_trace = false;
            if let Some(wants) = v.get("want").and_then(Value::as_arr) {
                for w in wants {
                    match w.as_str() {
                        Some("code") => want_code = true,
                        Some("timing") => want_timing = true,
                        Some("trace") => want_trace = true,
                        Some(other) => {
                            return Err(proto_err(&id, format!("unknown artifact {other:?}")))
                        }
                        None => return Err(proto_err(&id, "\"want\" entries must be strings")),
                    }
                }
            }
            Ok(Request::Compile(CompileJob {
                id,
                source,
                threads: get_u64("threads").unwrap_or(1) as usize,
                deadline_ms: get_u64("deadline_ms"),
                op_fuel: get_u64("op_fuel"),
                loop_splitting: get_bool("loop_splitting", true),
                want_code,
                want_timing,
                want_trace,
            }))
        }
        other => Err(proto_err(&id, format!("unknown op {other:?}"))),
    }
}

/// Serving context of one response: the cache-tier fields that live in the
/// server rather than in `dhpf_core`'s [`CompileResponse`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeMeta {
    /// This unit was compiled before on this server (memo tables warm).
    pub warm: bool,
    /// This response was fanned out from a concurrent identical request's
    /// compilation rather than compiled independently.
    pub coalesced: bool,
    /// Server-wide count of coalesced requests so far.
    pub dedup_hits: u64,
    /// Resident memo entries after the request.
    pub memo_entries: u64,
    /// Include the captured span tree in the response (the client sent
    /// `want:["trace"]`).
    pub trace: bool,
}

fn cache_obj(resp: &CompileResponse, meta: &ServeMeta) -> Obj {
    let c = &resp.cache;
    let hits = c.total_hits();
    let misses = c.total_misses();
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    Obj::new()
        .u64("hits", hits)
        .u64("misses", misses)
        .u64("evictions", c.total_evictions())
        .f64("hit_rate", rate, 4)
        .u64("entries", meta.memo_entries)
}

fn error_obj(code: ErrorCode, message: &str) -> Obj {
    Obj::new()
        .str("code", code.as_str())
        .str("message", message)
}

/// Serializes one response line (no trailing newline).
pub fn render_response(id: &str, resp: &CompileResponse, meta: &ServeMeta) -> String {
    let mut o = Obj::new().str("id", id);
    match &resp.error {
        None => {
            let mut degs = Arr::new();
            for d in &resp.degradations {
                degs = degs.obj(
                    Obj::new()
                        .str("site", d.site)
                        .opt_str("array", d.array.as_deref())
                        .str("reason", &d.reason)
                        .str("action", d.action),
                );
            }
            o = o
                .bool("ok", true)
                .u64("units", resp.units as u64)
                .u64("comm_events", resp.comm_events as u64)
                .arr("degradations", degs);
        }
        Some(e) => {
            o = o
                .bool("ok", false)
                .obj("error", error_obj(e.code, &e.message));
        }
    }
    o = o
        .obj("cache", cache_obj(resp, meta))
        .u64("cache_hits_delta", resp.cache_hits_delta)
        .bool("warm", meta.warm)
        .bool("coalesced", meta.coalesced)
        .u64("dedup_hits", meta.dedup_hits);
    let g = &resp.governor;
    o = o
        .obj(
            "governor",
            Obj::new()
                .u64("ops_charged", g.ops_charged)
                .u64("ops_degraded", g.ops_degraded)
                .opt_str("tripped", g.tripped),
        )
        .u64("compile_ms", resp.compile_ms);
    if let Some(code) = &resp.code {
        o = o.str("code", code);
    }
    if let Some(rows) = &resp.timing {
        let mut timing = Arr::new();
        for (name, ms) in rows {
            timing = timing.raw(&format!("[{},{ms:.3}]", escape(name)));
        }
        o = o.arr("timing", timing);
    }
    if meta.trace {
        if let Some(trace) = &resp.trace {
            o = o.raw("trace", trace);
        }
    }
    o.finish()
}

/// Serializes an error-only response line (protocol errors, admission
/// rejections) that never ran a compilation.
pub fn render_error(id: &str, err: &WireError) -> String {
    Obj::new()
        .str("id", id)
        .bool("ok", false)
        .obj("error", error_obj(err.code, &err.message))
        .finish()
}

/// Serializes the structured-JSON `metrics` response: counters and gauges
/// keyed by their rendered series (`name{labels}`), histograms as
/// count/sum/mean plus p50/p90/p99 upper bounds in the native unit.
pub fn render_metrics_json(id: &str, snap: &MetricsSnapshot) -> String {
    let mut counters = Obj::new();
    for s in &snap.counters {
        counters = counters.u64(&s.id.render(), s.value);
    }
    let mut gauges = Obj::new();
    for s in &snap.gauges {
        gauges = gauges.i64(&s.id.render(), s.value);
    }
    let mut hists = Obj::new();
    for (sid, h) in &snap.histograms {
        hists = hists.obj(
            &sid.render(),
            Obj::new()
                .u64("count", h.count)
                .u64("sum", h.sum)
                .f64("mean", h.mean(), 1)
                .u64("p50", h.quantile(0.5))
                .u64("p90", h.quantile(0.9))
                .u64("p99", h.quantile(0.99)),
        );
    }
    Obj::new()
        .str("id", id)
        .bool("ok", true)
        .obj("counters", counters)
        .obj("gauges", gauges)
        .obj("histograms", hists)
        .finish()
}

/// Serializes the Prometheus-format `metrics` response: the full text
/// exposition as one escaped string field, ready to unwrap and feed to a
/// Prometheus ingester.
pub fn render_metrics_prometheus(id: &str, snap: &MetricsSnapshot) -> String {
    Obj::new()
        .str("id", id)
        .bool("ok", true)
        .str("prometheus", &dhpf_obs::export::render_metrics_text(snap))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_compile_request() {
        let r = parse_request(r#"{"source":"program p\nend\n"}"#).unwrap();
        match r {
            Request::Compile(j) => {
                assert_eq!(j.source, "program p\nend\n");
                assert_eq!(j.threads, 1);
                assert!(j.loop_splitting);
                assert!(!j.want_code);
                assert_eq!(j.deadline_ms, None);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_compile_request() {
        let r = parse_request(
            r#"{"op":"compile","id":"r1","source":"x","options":{"threads":4,"deadline_ms":250,"op_fuel":1000,"loop_splitting":false},"want":["code","timing"]}"#,
        )
        .unwrap();
        match r {
            Request::Compile(j) => {
                assert_eq!(j.id, "r1");
                assert_eq!(j.threads, 4);
                assert_eq!(j.deadline_ms, Some(250));
                assert_eq!(j.op_fuel, Some(1000));
                assert!(!j.loop_splitting);
                assert!(j.want_code && j.want_timing);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_with_protocol_code() {
        let (_, e) = parse_request("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::Protocol);
        let (id, e) = parse_request(r#"{"op":"explode","id":"z"}"#).unwrap_err();
        assert_eq!(id, "z");
        assert_eq!(e.code, ErrorCode::Protocol);
    }

    #[test]
    fn dedup_key_tracks_output_affecting_fields_only() {
        let j = |threads: usize, split: bool| CompileJob {
            id: "a".into(),
            source: "s".into(),
            threads,
            deadline_ms: None,
            op_fuel: None,
            loop_splitting: split,
            want_code: false,
            want_timing: false,
            want_trace: false,
        };
        // Thread count never changes output (bit-identical guarantee), so
        // it is not part of the key…
        assert_eq!(j(1, true).dedup_key(), j(8, true).dedup_key());
        // …but codegen options are.
        assert_ne!(j(1, true).dedup_key(), j(1, false).dedup_key());
    }

    #[test]
    fn error_render_is_parseable_and_typed() {
        let line = render_error(
            "q",
            &WireError {
                code: ErrorCode::Budget,
                message: "deadline expired on arrival".into(),
            },
        );
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        let code = v.get("error").unwrap().get("code").unwrap();
        assert_eq!(
            ErrorCode::parse(code.as_str().unwrap()),
            Some(ErrorCode::Budget)
        );
    }
}
