//! The `dhpf-serve` wire protocol: JSON lines over TCP.
//!
//! One request per line, one response line per request, in order. The
//! serializer is hand-rolled on `dhpf_obs::json` (the workspace builds
//! fully offline — no serde), and the response vocabulary is deliberately
//! flat: stable [`ErrorCode`] spellings, counters, and optional artifact
//! strings, so any language's JSON library can consume it.
//!
//! ## Requests
//!
//! ```json
//! {"op":"compile","id":"r1","source":"program p\n…\nend\n",
//!  "options":{"threads":2,"deadline_ms":5000,"op_fuel":1000000,"loop_splitting":true},
//!  "want":["code","timing"]}
//! {"op":"ping","id":"p1"}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"q1"}
//! ```
//!
//! `op` defaults to `"compile"` when a `source` field is present, so the
//! minimal netcat request is `{"source":"…"}`. Unknown fields are ignored
//! (forward compatibility); unknown `op`s and malformed JSON produce an
//! `E_PROTOCOL` error response and leave the connection open.
//!
//! ## Responses
//!
//! Success: `{"id":…,"ok":true,"units":…,"comm_events":…,"degradations":[…],
//! "cache":{…},"cache_hits_delta":…,"warm":…,"coalesced":…,"dedup_hits":…,
//! "governor":{…},"compile_ms":…,"code":…,"timing":…}`.
//! Failure: `{"id":…,"ok":false,"error":{"code":"E_…","message":…},…}` —
//! `error.code` is the stable machine contract; `message` is for humans.

use dhpf_core::{CompileOptions, CompileRequest, CompileResponse, WireError};
use dhpf_obs::json::{escape, parse, Value};
use dhpf_omega::{Budget, ErrorCode};
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// Upper bound on per-request worker threads: protects the fleet from a
/// single request claiming the whole machine.
pub const MAX_THREADS: usize = 32;

/// A parsed protocol request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compile HPF source under per-request options.
    Compile(CompileJob),
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: String,
    },
    /// Server-wide statistics snapshot.
    Stats {
        /// Echoed request id.
        id: String,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown {
        /// Echoed request id.
        id: String,
    },
}

/// One compile request as it arrived on the wire.
#[derive(Clone, Debug)]
pub struct CompileJob {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: String,
    /// HPF source text.
    pub source: String,
    /// Worker threads (clamped to `1..=MAX_THREADS`).
    pub threads: usize,
    /// Wall-clock deadline; `Some(0)` is rejected at admission with
    /// `E_BUDGET` (expired on arrival).
    pub deadline_ms: Option<u64>,
    /// Omega-operation fuel cap.
    pub op_fuel: Option<u64>,
    /// Figure-4 loop splitting (affects generated code, so part of the
    /// dedup key).
    pub loop_splitting: bool,
    /// Return the rendered code listing.
    pub want_code: bool,
    /// Return per-phase timing rows.
    pub want_timing: bool,
}

impl CompileJob {
    /// The request-coalescing key: every field that can change the bytes
    /// of the response body. Requests that agree on this key are
    /// interchangeable, so concurrent duplicates fan out one compilation.
    pub fn dedup_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.source.hash(&mut h);
        self.loop_splitting.hash(&mut h);
        self.deadline_ms.hash(&mut h);
        self.op_fuel.hash(&mut h);
        self.want_code.hash(&mut h);
        self.want_timing.hash(&mut h);
        h.finish()
    }

    /// The warm-cache key: just the unit identity (source + codegen
    /// options), ignoring budgets and artifact wants — any earlier
    /// compilation of the same unit leaves the memo tables warm for this
    /// one.
    pub fn warm_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.source.hash(&mut h);
        self.loop_splitting.hash(&mut h);
        h.finish()
    }

    /// Lowers the wire job to a typed [`CompileRequest`].
    pub fn to_request(&self) -> CompileRequest {
        let mut budget = Budget::new();
        budget.deadline_ms = self.deadline_ms;
        budget.op_fuel = self.op_fuel;
        let opts = CompileOptions::new()
            .threads(self.threads.clamp(1, MAX_THREADS))
            .loop_splitting(self.loop_splitting)
            .budget(budget);
        CompileRequest::new(self.source.clone())
            .options(opts)
            .code(self.want_code)
            .timing(self.want_timing)
    }
}

fn proto_err(id: &str, msg: impl Into<String>) -> (String, WireError) {
    (
        id.to_string(),
        WireError {
            code: ErrorCode::Protocol,
            message: msg.into(),
        },
    )
}

/// Parses one request line. On error, returns the echoable id (empty if
/// the line was unparseable) plus a typed `E_PROTOCOL` [`WireError`].
pub fn parse_request(line: &str) -> Result<Request, (String, WireError)> {
    let v = parse(line).map_err(|e| proto_err("", format!("malformed JSON: {e}")))?;
    if v.as_obj().is_none() {
        return Err(proto_err("", "request must be a JSON object"));
    }
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let op = match v.get("op").and_then(Value::as_str) {
        Some(op) => op.to_string(),
        None if v.get("source").is_some() => "compile".to_string(),
        None => {
            return Err(proto_err(
                &id,
                "missing \"op\" (and no \"source\" to imply compile)",
            ))
        }
    };
    match op.as_str() {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "compile" => {
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| proto_err(&id, "compile request needs a string \"source\""))?
                .to_string();
            let opts = v.get("options");
            let get_u64 = |key: &str| -> Option<u64> {
                opts.and_then(|o| o.get(key))
                    .and_then(Value::as_f64)
                    .map(|f| f.max(0.0) as u64)
            };
            let get_bool = |key: &str, default: bool| -> bool {
                match opts.and_then(|o| o.get(key)) {
                    Some(Value::Bool(b)) => *b,
                    _ => default,
                }
            };
            let mut want_code = false;
            let mut want_timing = false;
            if let Some(wants) = v.get("want").and_then(Value::as_arr) {
                for w in wants {
                    match w.as_str() {
                        Some("code") => want_code = true,
                        Some("timing") => want_timing = true,
                        Some(other) => {
                            return Err(proto_err(&id, format!("unknown artifact {other:?}")))
                        }
                        None => return Err(proto_err(&id, "\"want\" entries must be strings")),
                    }
                }
            }
            Ok(Request::Compile(CompileJob {
                id,
                source,
                threads: get_u64("threads").unwrap_or(1) as usize,
                deadline_ms: get_u64("deadline_ms"),
                op_fuel: get_u64("op_fuel"),
                loop_splitting: get_bool("loop_splitting", true),
                want_code,
                want_timing,
            }))
        }
        other => Err(proto_err(&id, format!("unknown op {other:?}"))),
    }
}

/// Serving context of one response: the cache-tier fields that live in the
/// server rather than in `dhpf_core`'s [`CompileResponse`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeMeta {
    /// This unit was compiled before on this server (memo tables warm).
    pub warm: bool,
    /// This response was fanned out from a concurrent identical request's
    /// compilation rather than compiled independently.
    pub coalesced: bool,
    /// Server-wide count of coalesced requests so far.
    pub dedup_hits: u64,
    /// Resident memo entries after the request.
    pub memo_entries: u64,
}

fn push_cache(out: &mut String, resp: &CompileResponse, meta: &ServeMeta) {
    let c = &resp.cache;
    let hits = c.total_hits();
    let misses = c.total_misses();
    let evictions = c.total_evictions();
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    let _ = write!(
        out,
        "\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\
         \"hit_rate\":{rate:.4},\"entries\":{}}},\"cache_hits_delta\":{}",
        meta.memo_entries, resp.cache_hits_delta,
    );
}

/// Serializes one response line (no trailing newline).
pub fn render_response(id: &str, resp: &CompileResponse, meta: &ServeMeta) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"id\":{},", escape(id));
    match &resp.error {
        None => {
            let _ = write!(
                out,
                "\"ok\":true,\"units\":{},\"comm_events\":{},",
                resp.units, resp.comm_events
            );
            out.push_str("\"degradations\":[");
            for (i, d) in resp.degradations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"site\":{},\"array\":{},\"reason\":{},\"action\":{}}}",
                    escape(d.site),
                    match &d.array {
                        Some(a) => escape(a),
                        None => "null".to_string(),
                    },
                    escape(&d.reason),
                    escape(d.action),
                );
            }
            out.push_str("],");
        }
        Some(e) => {
            let _ = write!(
                out,
                "\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}},",
                escape(e.code.as_str()),
                escape(&e.message)
            );
        }
    }
    push_cache(&mut out, resp, meta);
    let _ = write!(
        out,
        ",\"warm\":{},\"coalesced\":{},\"dedup_hits\":{}",
        meta.warm, meta.coalesced, meta.dedup_hits
    );
    let g = &resp.governor;
    let _ = write!(
        out,
        ",\"governor\":{{\"ops_charged\":{},\"ops_degraded\":{},\"tripped\":{}}}",
        g.ops_charged,
        g.ops_degraded,
        match g.tripped {
            Some(t) => escape(t),
            None => "null".to_string(),
        }
    );
    let _ = write!(out, ",\"compile_ms\":{}", resp.compile_ms);
    if let Some(code) = &resp.code {
        let _ = write!(out, ",\"code\":{}", escape(code));
    }
    if let Some(rows) = &resp.timing {
        out.push_str(",\"timing\":[");
        for (i, (name, ms)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{ms:.3}]", escape(name));
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Serializes an error-only response line (protocol errors, admission
/// rejections) that never ran a compilation.
pub fn render_error(id: &str, err: &WireError) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{{\"code\":{},\"message\":{}}}}}",
        escape(id),
        escape(err.code.as_str()),
        escape(&err.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_compile_request() {
        let r = parse_request(r#"{"source":"program p\nend\n"}"#).unwrap();
        match r {
            Request::Compile(j) => {
                assert_eq!(j.source, "program p\nend\n");
                assert_eq!(j.threads, 1);
                assert!(j.loop_splitting);
                assert!(!j.want_code);
                assert_eq!(j.deadline_ms, None);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_compile_request() {
        let r = parse_request(
            r#"{"op":"compile","id":"r1","source":"x","options":{"threads":4,"deadline_ms":250,"op_fuel":1000,"loop_splitting":false},"want":["code","timing"]}"#,
        )
        .unwrap();
        match r {
            Request::Compile(j) => {
                assert_eq!(j.id, "r1");
                assert_eq!(j.threads, 4);
                assert_eq!(j.deadline_ms, Some(250));
                assert_eq!(j.op_fuel, Some(1000));
                assert!(!j.loop_splitting);
                assert!(j.want_code && j.want_timing);
            }
            other => panic!("expected compile, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_with_protocol_code() {
        let (_, e) = parse_request("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::Protocol);
        let (id, e) = parse_request(r#"{"op":"explode","id":"z"}"#).unwrap_err();
        assert_eq!(id, "z");
        assert_eq!(e.code, ErrorCode::Protocol);
    }

    #[test]
    fn dedup_key_tracks_output_affecting_fields_only() {
        let j = |threads: usize, split: bool| CompileJob {
            id: "a".into(),
            source: "s".into(),
            threads,
            deadline_ms: None,
            op_fuel: None,
            loop_splitting: split,
            want_code: false,
            want_timing: false,
        };
        // Thread count never changes output (bit-identical guarantee), so
        // it is not part of the key…
        assert_eq!(j(1, true).dedup_key(), j(8, true).dedup_key());
        // …but codegen options are.
        assert_ne!(j(1, true).dedup_key(), j(1, false).dedup_key());
    }

    #[test]
    fn error_render_is_parseable_and_typed() {
        let line = render_error(
            "q",
            &WireError {
                code: ErrorCode::Budget,
                message: "deadline expired on arrival".into(),
            },
        );
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        let code = v.get("error").unwrap().get("code").unwrap();
        assert_eq!(
            ErrorCode::parse(code.as_str().unwrap()),
            Some(ErrorCode::Budget)
        );
    }
}
