//! Serving-tier metrics: one [`ServeMetrics`] per daemon, wrapping a
//! [`Registry`] with the fixed series vocabulary of the serve path.
//!
//! Every series is pre-registered at construction where the label space
//! is known (ops, error codes, warm/cold, leader/follower), so the first
//! scrape of an idle daemon already shows zeros for the whole vocabulary
//! — a dashboard can alert on `rate(errors_total) > 0` without waiting
//! for the first error to create the series. Label spaces discovered at
//! runtime (degradation actions, governor trip reasons) register on
//! first use.
//!
//! The hot-path handles (request duration histograms, coalesce
//! counters) are resolved once at construction; recording through them
//! is lock-free. The `metrics-overhead` acceptance budget (≤2% on the
//! warm serve path, measured by `serve_bench`) is the contract this
//! module is held to.

use dhpf_core::CompileResponse;
use dhpf_obs::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use dhpf_omega::{Context, ErrorCode};

/// The request ops the daemon counts, including the pseudo-op
/// `"invalid"` for lines that failed to parse. Kept in one place so the
/// registry pre-registration, the dispatcher, and the lint stay in sync.
pub const OPS: &[&str] = &["compile", "ping", "stats", "metrics", "shutdown", "invalid"];

/// All metric series recorded by the serve path. Construct once per
/// daemon; handles are cheap to clone and lock-free to record through.
pub struct ServeMetrics {
    registry: Registry,
    warm_us: Histogram,
    cold_us: Histogram,
    leader: Counter,
    follower: Counter,
    inflight: Gauge,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with the full fixed-label vocabulary
    /// pre-registered at zero.
    pub fn new() -> Self {
        let registry = Registry::new();
        for op in OPS {
            registry.counter("dhpf_serve_requests_total", &[("op", op)]);
        }
        for &code in ErrorCode::ALL {
            registry.counter("dhpf_serve_errors_total", &[("code", code.as_str())]);
        }
        for kind in ["requested", "slow"] {
            registry.counter("dhpf_serve_traces_total", &[("kind", kind)]);
        }
        let warm_us = registry.histogram("dhpf_serve_request_duration_us", &[("kind", "warm")]);
        let cold_us = registry.histogram("dhpf_serve_request_duration_us", &[("kind", "cold")]);
        let leader = registry.counter("dhpf_serve_coalesce_total", &[("role", "leader")]);
        let follower = registry.counter("dhpf_serve_coalesce_total", &[("role", "follower")]);
        let inflight = registry.gauge("dhpf_serve_inflight", &[]);
        ServeMetrics {
            registry,
            warm_us,
            cold_us,
            leader,
            follower,
            inflight,
        }
    }

    /// Counts one arriving request under its op (or `"invalid"`).
    pub fn record_request(&self, op: &str) {
        self.registry
            .counter("dhpf_serve_requests_total", &[("op", op)])
            .inc();
    }

    /// Counts one error response by its stable code.
    pub fn record_error(&self, code: ErrorCode) {
        self.registry
            .counter("dhpf_serve_errors_total", &[("code", code.as_str())])
            .inc();
    }

    /// Counts one returned trace (`"requested"` by the client or sampled
    /// as `"slow"`).
    pub fn record_trace(&self, kind: &str) {
        self.registry
            .counter("dhpf_serve_traces_total", &[("kind", kind)])
            .inc();
    }

    /// Marks a compile entering (+1) or leaving (-1) the in-flight set.
    pub fn inflight_delta(&self, delta: i64) {
        self.inflight.add(delta);
    }

    /// Records everything one finished compile request tells us: the
    /// warm-vs-cold latency sample, the coalescing role, any error by
    /// code, each degradation by action, and a governor trip by reason.
    pub fn record_compile(
        &self,
        resp: &CompileResponse,
        warm: bool,
        coalesced: bool,
        duration_us: u64,
    ) {
        if warm {
            self.warm_us.observe(duration_us);
        } else {
            self.cold_us.observe(duration_us);
        }
        if coalesced {
            self.follower.inc();
        } else {
            self.leader.inc();
        }
        if let Some(e) = &resp.error {
            self.record_error(e.code);
        }
        for d in &resp.degradations {
            self.registry
                .counter("dhpf_serve_degradations_total", &[("action", d.action)])
                .inc();
        }
        if let Some(reason) = resp.governor.tripped {
            self.registry
                .counter("dhpf_serve_governor_trips_total", &[("reason", reason)])
                .inc();
        }
    }

    /// Refreshes the context-derived gauges: per-table memo occupancy,
    /// resident total, and cumulative evictions. Called at scrape time,
    /// not per request — gauges are instantaneous reads of the context,
    /// so sampling them when someone looks is both fresher and cheaper.
    pub fn update_context_gauges(&self, ctx: &Context) {
        for (table, n) in ctx.memo_occupancy() {
            self.registry
                .gauge("dhpf_serve_memo_entries", &[("table", table)])
                .set(n as i64);
        }
        self.registry
            .gauge("dhpf_serve_memo_resident", &[])
            .set(ctx.memo_entries() as i64);
        self.registry
            .gauge("dhpf_serve_memo_evictions", &[])
            .set(ctx.stats().total_evictions() as i64);
    }

    /// A point-in-time snapshot of every series (see
    /// [`Registry::snapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_preregistered_at_zero() {
        let m = ServeMetrics::new();
        let snap = m.snapshot();
        for op in OPS {
            assert_eq!(
                snap.counter(&format!("dhpf_serve_requests_total{{op=\"{op}\"}}")),
                Some(0)
            );
        }
        for &code in ErrorCode::ALL {
            assert_eq!(
                snap.counter(&format!("dhpf_serve_errors_total{{code=\"{code}\"}}")),
                Some(0)
            );
        }
        assert!(snap
            .histogram("dhpf_serve_request_duration_us{kind=\"warm\"}")
            .is_some());
    }

    #[test]
    fn exposition_of_fresh_metrics_validates() {
        let m = ServeMetrics::new();
        m.record_request("compile");
        m.record_error(ErrorCode::Budget);
        let text = dhpf_obs::export::render_metrics_text(&m.snapshot());
        let sum = dhpf_obs::export::validate_metrics_text(&text).expect("valid exposition");
        assert_eq!(
            sum.counters
                .get("dhpf_serve_requests_total{op=\"compile\"}"),
            Some(&1.0)
        );
    }
}
