//! # dhpf-serve — a long-running compile daemon with fleet-level cache reuse
//!
//! A build fleet recompiles the same HPF units over and over: a CI farm,
//! an autotuner sweeping distribution parameters, an IDE recompiling on
//! every save. Each cold `dhpf` invocation rebuilds the Omega memo tables
//! from nothing, so the set-algebra work that dominates compile time
//! (satisfiability, projection, gist) is repaid on every run. This crate
//! keeps one process alive instead: a thread-per-connection TCP daemon
//! holding a single sharded [`Context`] whose hash-consing arena and memo
//! tables persist across requests, bounded by cost-aware eviction so a
//! week of traffic cannot grow it without limit.
//!
//! The serving tier adds three things the batch driver does not have:
//!
//! 1. **Cache reuse** — every request compiles via
//!    [`process_request`](dhpf_core::process_request) on the shared
//!    context and reports `cache_hits_delta`, the hits gained during that
//!    request alone, plus a `warm` flag when the unit was seen before.
//! 2. **Request deduplication** — concurrent identical requests (same
//!    [`dedup_key`](proto::CompileJob::dedup_key)) coalesce: one leader
//!    compiles, followers block on a condvar and fan out the shared
//!    response with `coalesced: true`.
//! 3. **Per-request governance** — each request's `deadline_ms`/`op_fuel`
//!    arm a thread-scoped [`RequestGovernor`](dhpf_omega::RequestGovernor)
//!    inside the driver, so one client's expired deadline never trips a
//!    neighbour's compilation. `deadline_ms: 0` is rejected at admission
//!    with `E_BUDGET` before any work happens.
//!
//! See [`proto`] for the JSON-lines wire format.

#![warn(missing_docs)]

pub mod proto;

use dhpf_core::{CompileResponse, WireError};
use dhpf_omega::{Context, ErrorCode};
use proto::{render_error, render_response, CompileJob, Request, ServeMeta};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One in-flight compilation that duplicates can latch onto.
struct InFlight {
    slot: Mutex<Option<Arc<CompileResponse>>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, resp: Arc<CompileResponse>) {
        *self.slot.lock().unwrap() = Some(resp);
        self.done.notify_all();
    }

    fn wait(&self) -> Arc<CompileResponse> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(resp) = slot.as_ref() {
                return Arc::clone(resp);
            }
            slot = self.done.wait(slot).unwrap();
        }
    }
}

/// Shared server state: the persistent compile context plus the dedup and
/// warm-tracking maps around it.
struct State {
    ctx: Context,
    /// Leader election table: dedup key → the compilation to latch onto.
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
    /// Units compiled at least once (warm-cache detection).
    completed: Mutex<HashSet<u64>>,
    requests: AtomicU64,
    dedup_hits: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

/// The compile daemon: owns the listener and the shared [`Context`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// A handle that can stop a running [`Server::serve`] loop from another
/// thread (used by tests and the `shutdown` op).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown and pokes the acceptor awake.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(2); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) with
    /// a fresh context holding at most `cache_cap` memo entries per table.
    pub fn bind(addr: impl ToSocketAddrs, cache_cap: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                ctx: Context::with_capacity(cache_cap),
                inflight: Mutex::new(HashMap::new()),
                completed: Mutex::new(HashSet::new()),
                requests: AtomicU64::new(0),
                dedup_hits: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (port resolved when binding to port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the serve loop from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accepts connections until shutdown, one handler thread per
    /// connection. Returns once the shutdown flag is observed.
    pub fn serve(&self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &state)
            }));
            // Reap finished handlers so a long-lived daemon does not
            // accumulate join handles.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, stop) = dispatch(&line, state);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor (see ShutdownHandle::shutdown).
            if let Ok(addr) = writer.get_ref().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
}

/// Handles one request line; returns the response line and whether this
/// request asked the server to shut down.
fn dispatch(line: &str, state: &Arc<State>) -> (String, bool) {
    match proto::parse_request(line) {
        Err((id, err)) => (render_error(&id, &err), false),
        Ok(Request::Ping { id }) => (
            format!(
                "{{\"id\":{},\"ok\":true,\"pong\":true}}",
                dhpf_obs::json::escape(&id)
            ),
            false,
        ),
        Ok(Request::Stats { id }) => (render_stats(&id, state), false),
        Ok(Request::Shutdown { id }) => (
            format!(
                "{{\"id\":{},\"ok\":true,\"shutting_down\":true}}",
                dhpf_obs::json::escape(&id)
            ),
            true,
        ),
        Ok(Request::Compile(job)) => (handle_compile(&job, state), false),
    }
}

fn render_stats(id: &str, state: &Arc<State>) -> String {
    let c = state.ctx.stats();
    format!(
        "{{\"id\":{},\"ok\":true,\"requests\":{},\"dedup_hits\":{},\"memo_entries\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},\"uptime_ms\":{}}}",
        dhpf_obs::json::escape(id),
        state.requests.load(Ordering::Relaxed),
        state.dedup_hits.load(Ordering::Relaxed),
        state.ctx.memo_entries(),
        c.total_hits(),
        c.total_misses(),
        c.total_evictions(),
        state.started.elapsed().as_millis(),
    )
}

fn handle_compile(job: &CompileJob, state: &Arc<State>) -> String {
    state.requests.fetch_add(1, Ordering::Relaxed);

    // Admission control: a zero deadline can never finish; reject it with
    // the same typed code a mid-flight expiry produces, before any set
    // algebra runs or an in-flight slot is claimed.
    if job.deadline_ms == Some(0) {
        return render_error(
            &job.id,
            &WireError {
                code: ErrorCode::Budget,
                message: "deadline expired on arrival (deadline_ms = 0)".to_string(),
            },
        );
    }

    let key = job.dedup_key();
    let warm_key = job.warm_key();
    let warm = state.completed.lock().unwrap().contains(&warm_key);

    // Leader election: first arrival for a key inserts the in-flight slot
    // and compiles; everyone else latches onto it.
    let (flight, leader) = {
        let mut inflight = state.inflight.lock().unwrap();
        match inflight.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(InFlight::new());
                inflight.insert(key, Arc::clone(&f));
                (f, true)
            }
        }
    };

    let (resp, coalesced) = if leader {
        let resp = Arc::new(dhpf_core::process_request(&state.ctx, &job.to_request()));
        flight.publish(Arc::clone(&resp));
        // Followers holding the Arc still see the published slot after
        // this removal; new arrivals start a fresh compilation.
        state.inflight.lock().unwrap().remove(&key);
        if resp.error.is_none() {
            state.completed.lock().unwrap().insert(warm_key);
        }
        (resp, false)
    } else {
        state.dedup_hits.fetch_add(1, Ordering::Relaxed);
        (flight.wait(), true)
    };

    let meta = ServeMeta {
        warm,
        coalesced,
        dedup_hits: state.dedup_hits.load(Ordering::Relaxed),
        memo_entries: state.ctx.memo_entries(),
    };
    render_response(&job.id, &resp, &meta)
}

/// Connects to a running daemon, sends each line of `requests`, and
/// returns the response lines in order (the `--send` client mode and the
/// CI smoke test both use this).
pub fn send_lines(addr: impl ToSocketAddrs, requests: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut replies = Vec::with_capacity(requests.len());
    for req in requests {
        writer.write_all(req.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        replies.push(line.trim_end().to_string());
    }
    Ok(replies)
}
