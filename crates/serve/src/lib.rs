//! # dhpf-serve — a long-running compile daemon with fleet-level cache reuse
//!
//! A build fleet recompiles the same HPF units over and over: a CI farm,
//! an autotuner sweeping distribution parameters, an IDE recompiling on
//! every save. Each cold `dhpf` invocation rebuilds the Omega memo tables
//! from nothing, so the set-algebra work that dominates compile time
//! (satisfiability, projection, gist) is repaid on every run. This crate
//! keeps one process alive instead: a thread-per-connection TCP daemon
//! holding a single sharded [`Context`] whose hash-consing arena and memo
//! tables persist across requests, bounded by cost-aware eviction so a
//! week of traffic cannot grow it without limit.
//!
//! The serving tier adds three things the batch driver does not have:
//!
//! 1. **Cache reuse** — every request compiles via
//!    [`process_request`](dhpf_core::process_request) on the shared
//!    context and reports `cache_hits_delta`, the hits gained during that
//!    request alone, plus a `warm` flag when the unit was seen before.
//! 2. **Request deduplication** — concurrent identical requests (same
//!    [`dedup_key`](proto::CompileJob::dedup_key)) coalesce: one leader
//!    compiles, followers block on a condvar and fan out the shared
//!    response with `coalesced: true`.
//! 3. **Per-request governance** — each request's `deadline_ms`/`op_fuel`
//!    arm a thread-scoped [`RequestGovernor`](dhpf_omega::RequestGovernor)
//!    inside the driver, so one client's expired deadline never trips a
//!    neighbour's compilation. `deadline_ms: 0` is rejected at admission
//!    with `E_BUDGET` before any work happens.
//! 4. **Observability** — a [`ServeMetrics`](metrics::ServeMetrics)
//!    registry counts every request, error, coalesce role, degradation,
//!    and governor trip, and samples warm/cold request latencies into
//!    histograms; scrape it with the `metrics` op. A structured JSON-lines
//!    access log ([`ServeConfig::access_log`]) records one line per
//!    request, and a slow-request sampler
//!    ([`ServeConfig::trace_slow_ms`]) embeds the span tree of any
//!    compilation at or over the threshold.
//!
//! See [`proto`] for the JSON-lines wire format.

#![warn(missing_docs)]

pub mod metrics;
pub mod proto;

use dhpf_core::{CompileResponse, WireError};
use dhpf_obs::json::Obj;
use dhpf_omega::{Context, ErrorCode};
use metrics::ServeMetrics;
use proto::{render_error, render_response, CompileJob, Request, ServeMeta};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Daemon configuration beyond the bind address (see
/// [`Server::bind_with`]).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Memo entries per table before cost-aware eviction kicks in.
    pub cache_cap: usize,
    /// Append one structured JSON line per request to this file
    /// (schema: `dhpf_obs::export::validate_access_log`).
    pub access_log: Option<PathBuf>,
    /// Capture a span tree for every compilation and embed it in the
    /// access-log record of any request whose compile time is at or over
    /// this many milliseconds (`Some(0)` traces everything).
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_cap: dhpf_omega::DEFAULT_CACHE_CAP,
            access_log: None,
            trace_slow_ms: None,
        }
    }
}

/// One in-flight compilation that duplicates can latch onto.
struct InFlight {
    slot: Mutex<Option<Arc<CompileResponse>>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, resp: Arc<CompileResponse>) {
        *self.slot.lock().unwrap() = Some(resp);
        self.done.notify_all();
    }

    fn wait(&self) -> Arc<CompileResponse> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(resp) = slot.as_ref() {
                return Arc::clone(resp);
            }
            slot = self.done.wait(slot).unwrap();
        }
    }
}

/// Shared server state: the persistent compile context plus the dedup and
/// warm-tracking maps around it.
struct State {
    ctx: Context,
    /// Leader election table: dedup key → the compilation to latch onto.
    inflight: Mutex<HashMap<u64, Arc<InFlight>>>,
    /// Units compiled at least once (warm-cache detection).
    completed: Mutex<HashSet<u64>>,
    requests: AtomicU64,
    dedup_hits: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    metrics: ServeMetrics,
    access_log: Option<Mutex<std::fs::File>>,
    trace_slow_ms: Option<u64>,
}

impl State {
    /// Appends one record to the access log (with per-line flush, so a
    /// tail-reader and the validator always see whole lines). When no log
    /// file is configured, records carrying a slow-sampled trace fall
    /// back to stderr — a slow-request trace is exactly the thing an
    /// operator without an access log still wants to see.
    fn log_access(&self, record: &str, has_slow_trace: bool) {
        match &self.access_log {
            Some(file) => {
                let mut f = file.lock().unwrap();
                let _ = f
                    .write_all(record.as_bytes())
                    .and_then(|()| f.write_all(b"\n"))
                    .and_then(|()| f.flush());
            }
            None if has_slow_trace => eprintln!("{record}"),
            None => {}
        }
    }
}

/// Milliseconds since the Unix epoch (the `ts_ms` access-log field).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Microseconds of one request's wall time, saturating.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The compile daemon: owns the listener and the shared [`Context`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// A handle that can stop a running [`Server::serve`] loop from another
/// thread (used by tests and the `shutdown` op).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown and pokes the acceptor awake.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(2); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) with
    /// a fresh context holding at most `cache_cap` memo entries per table.
    pub fn bind(addr: impl ToSocketAddrs, cache_cap: usize) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            &ServeConfig {
                cache_cap,
                ..ServeConfig::default()
            },
        )
    }

    /// Binds the daemon with full [`ServeConfig`] control: cache
    /// capacity, access log, and slow-trace sampling.
    pub fn bind_with(addr: impl ToSocketAddrs, config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        Ok(Server {
            listener,
            state: Arc::new(State {
                ctx: Context::with_capacity(config.cache_cap),
                inflight: Mutex::new(HashMap::new()),
                completed: Mutex::new(HashSet::new()),
                requests: AtomicU64::new(0),
                dedup_hits: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                metrics: ServeMetrics::new(),
                access_log,
                trace_slow_ms: config.trace_slow_ms,
            }),
        })
    }

    /// The bound address (port resolved when binding to port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the serve loop from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Accepts connections until shutdown, one handler thread per
    /// connection. Returns once the shutdown flag is observed.
    pub fn serve(&self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &state)
            }));
            // Reap finished handlers so a long-lived daemon does not
            // accumulate join handles.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, stop) = dispatch(&line, state);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor (see ShutdownHandle::shutdown).
            if let Ok(addr) = writer.get_ref().local_addr() {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
}

/// Handles one request line; returns the response line and whether this
/// request asked the server to shut down.
fn dispatch(line: &str, state: &Arc<State>) -> (String, bool) {
    let t0 = Instant::now();
    let parsed = proto::parse_request(line);
    let op = match &parsed {
        Err(_) => "invalid",
        Ok(Request::Ping { .. }) => "ping",
        Ok(Request::Stats { .. }) => "stats",
        Ok(Request::Metrics { .. }) => "metrics",
        Ok(Request::Shutdown { .. }) => "shutdown",
        Ok(Request::Compile(_)) => "compile",
    };
    state.metrics.record_request(op);
    match parsed {
        Err((id, err)) => {
            state.metrics.record_error(err.code);
            log_op_access(state, &id, op, err.code.as_str(), t0);
            (render_error(&id, &err), false)
        }
        Ok(Request::Ping { id }) => {
            log_op_access(state, &id, op, "ok", t0);
            (
                Obj::new()
                    .str("id", &id)
                    .bool("ok", true)
                    .bool("pong", true)
                    .finish(),
                false,
            )
        }
        Ok(Request::Stats { id }) => {
            let reply = render_stats(&id, state);
            log_op_access(state, &id, op, "ok", t0);
            (reply, false)
        }
        Ok(Request::Metrics { id, prometheus }) => {
            state.metrics.update_context_gauges(&state.ctx);
            let snap = state.metrics.snapshot();
            let reply = if prometheus {
                proto::render_metrics_prometheus(&id, &snap)
            } else {
                proto::render_metrics_json(&id, &snap)
            };
            log_op_access(state, &id, op, "ok", t0);
            (reply, false)
        }
        Ok(Request::Shutdown { id }) => {
            log_op_access(state, &id, op, "ok", t0);
            (
                Obj::new()
                    .str("id", &id)
                    .bool("ok", true)
                    .bool("shutting_down", true)
                    .finish(),
                true,
            )
        }
        Ok(Request::Compile(job)) => (handle_compile(&job, state, t0), false),
    }
}

/// One access-log record for a non-compile op.
fn log_op_access(state: &Arc<State>, id: &str, op: &str, outcome: &str, t0: Instant) {
    if state.access_log.is_none() {
        return;
    }
    let record = Obj::new()
        .u64("ts_ms", now_ms())
        .str("id", id)
        .str("op", op)
        .str("outcome", outcome)
        .u64("duration_us", elapsed_us(t0))
        .finish();
    state.log_access(&record, false);
}

fn render_stats(id: &str, state: &Arc<State>) -> String {
    let c = state.ctx.stats();
    Obj::new()
        .str("id", id)
        .bool("ok", true)
        .u64("requests", state.requests.load(Ordering::Relaxed))
        .u64("dedup_hits", state.dedup_hits.load(Ordering::Relaxed))
        .u64("memo_entries", state.ctx.memo_entries())
        .obj(
            "cache",
            Obj::new()
                .u64("hits", c.total_hits())
                .u64("misses", c.total_misses())
                .u64("evictions", c.total_evictions()),
        )
        .u64(
            "uptime_ms",
            u64::try_from(state.started.elapsed().as_millis()).unwrap_or(u64::MAX),
        )
        .finish()
}

fn handle_compile(job: &CompileJob, state: &Arc<State>, t0: Instant) -> String {
    state.requests.fetch_add(1, Ordering::Relaxed);

    // Admission control: a zero deadline can never finish; reject it with
    // the same typed code a mid-flight expiry produces, before any set
    // algebra runs or an in-flight slot is claimed.
    if job.deadline_ms == Some(0) {
        let err = WireError {
            code: ErrorCode::Budget,
            message: "deadline expired on arrival (deadline_ms = 0)".to_string(),
        };
        state.metrics.record_error(err.code);
        log_compile_access(state, job, "E_BUDGET", t0, false, false, None);
        return render_error(&job.id, &err);
    }

    let key = job.dedup_key();
    let warm_key = job.warm_key();
    let warm = state.completed.lock().unwrap().contains(&warm_key);

    // Leader election: first arrival for a key inserts the in-flight slot
    // and compiles; everyone else latches onto it.
    let (flight, leader) = {
        let mut inflight = state.inflight.lock().unwrap();
        match inflight.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(InFlight::new());
                inflight.insert(key, Arc::clone(&f));
                (f, true)
            }
        }
    };

    let (resp, coalesced) = if leader {
        state.metrics.inflight_delta(1);
        let mut req = job.to_request();
        // With slow-trace sampling on, every compilation is traced —
        // which request will be slow is only known afterwards. Tracing is
        // non-perturbing (the program is identical with or without it),
        // and the trace reaches the client only when asked for.
        if state.trace_slow_ms.is_some() {
            req.artifacts.trace = true;
        }
        let resp = Arc::new(dhpf_core::process_request(&state.ctx, &req));
        state.metrics.inflight_delta(-1);
        flight.publish(Arc::clone(&resp));
        // Followers holding the Arc still see the published slot after
        // this removal; new arrivals start a fresh compilation.
        state.inflight.lock().unwrap().remove(&key);
        if resp.error.is_none() {
            state.completed.lock().unwrap().insert(warm_key);
        }
        (resp, false)
    } else {
        state.dedup_hits.fetch_add(1, Ordering::Relaxed);
        (flight.wait(), true)
    };

    state
        .metrics
        .record_compile(&resp, warm, coalesced, elapsed_us(t0));
    if job.want_trace {
        state.metrics.record_trace("requested");
    }
    // Slow-request sampling: the leader (who paid the compile time) logs
    // the span tree; followers shared that compilation, so re-logging the
    // identical trace would only bloat the log.
    let slow = !coalesced && state.trace_slow_ms.is_some_and(|ms| resp.compile_ms >= ms);
    let slow_trace = if slow {
        state.metrics.record_trace("slow");
        resp.trace.as_deref()
    } else {
        None
    };
    let outcome = match &resp.error {
        None => "ok".to_string(),
        Some(e) => e.code.as_str().to_string(),
    };
    log_compile_access(state, job, &outcome, t0, warm, coalesced, slow_trace);

    let meta = ServeMeta {
        warm,
        coalesced,
        dedup_hits: state.dedup_hits.load(Ordering::Relaxed),
        memo_entries: state.ctx.memo_entries(),
        trace: job.want_trace,
    };
    render_response(&job.id, &resp, &meta)
}

/// One access-log record for a compile request, optionally carrying the
/// slow-sampled span tree.
fn log_compile_access(
    state: &Arc<State>,
    job: &CompileJob,
    outcome: &str,
    t0: Instant,
    warm: bool,
    coalesced: bool,
    slow_trace: Option<&str>,
) {
    if state.access_log.is_none() && slow_trace.is_none() {
        return;
    }
    let mut record = Obj::new()
        .u64("ts_ms", now_ms())
        .str("id", &job.id)
        .str("op", "compile")
        .str("outcome", outcome)
        .u64("duration_us", elapsed_us(t0))
        .bool("warm", warm)
        .bool("coalesced", coalesced);
    if let Some(trace) = slow_trace {
        record = record.raw("trace", trace);
    }
    state.log_access(&record.finish(), slow_trace.is_some());
}

/// Connects to a running daemon, sends each line of `requests`, and
/// returns the response lines in order (the `--send` client mode and the
/// CI smoke test both use this).
pub fn send_lines(addr: impl ToSocketAddrs, requests: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut replies = Vec::with_capacity(requests.len());
    for req in requests {
        writer.write_all(req.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        replies.push(line.trim_end().to_string());
    }
    Ok(replies)
}
