//! End-to-end observability tests: the `metrics` op reconciles exactly
//! with a scripted warm/cold/error/coalesced request mix, `want:["trace"]`
//! returns a schema-valid span tree, and the structured access log (with
//! slow-trace sampling) validates against the exporter's schema.

use dhpf_obs::export::{validate_access_log, validate_metrics_text, validate_span_tree_value};
use dhpf_obs::json::{parse, Value};
use dhpf_serve::{send_lines, ServeConfig, Server, ShutdownHandle};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
enddo
end
";

fn start_server_with(
    config: &ServeConfig,
) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind_with("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.serve().unwrap());
    (addr, handle, join)
}

fn compile_req(id: &str, extra: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{id}\",\"source\":{}{extra}}}",
        dhpf_obs::json::escape(JACOBI)
    )
}

fn get_bool(v: &Value, key: &str) -> bool {
    match v.get(key) {
        Some(Value::Bool(b)) => *b,
        other => panic!("missing bool {key:?}, got {other:?}"),
    }
}

fn counter(v: &Value, key: &str) -> u64 {
    v.get("counters")
        .and_then(|c| c.get(key))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing counter {key:?} in {v:?}")) as u64
}

#[test]
fn metrics_reconcile_with_driven_request_mix() {
    let (addr, handle, join) = start_server_with(&ServeConfig::default());

    // Scripted mix on one connection: cold compile, warm repeat, frontend
    // error, admission rejection, ping — then scrape.
    let replies = send_lines(
        addr,
        &[
            compile_req("cold", ""),
            compile_req("warm", ""),
            "{\"op\":\"compile\",\"id\":\"bad\",\"source\":\"program p\\nsyntax? error!\\nend\\n\"}"
                .to_string(),
            compile_req("dead", ",\"options\":{\"deadline_ms\":0}"),
            "{\"op\":\"ping\",\"id\":\"p\"}".to_string(),
            "{\"op\":\"metrics\",\"id\":\"m\"}".to_string(),
        ],
    )
    .unwrap();
    assert_eq!(replies.len(), 6);

    let m = parse(&replies[5]).unwrap();
    assert!(get_bool(&m, "ok"), "{}", replies[5]);
    assert_eq!(
        counter(&m, "dhpf_serve_requests_total{op=\"compile\"}"),
        4,
        "{}",
        replies[5]
    );
    assert_eq!(counter(&m, "dhpf_serve_requests_total{op=\"ping\"}"), 1);
    assert_eq!(counter(&m, "dhpf_serve_requests_total{op=\"metrics\"}"), 1);
    // The syntax error and the deadline-0 rejection each land on their
    // typed code; no other error series moved.
    assert_eq!(
        counter(&m, "dhpf_serve_errors_total{code=\"E_FRONTEND\"}"),
        1
    );
    assert_eq!(counter(&m, "dhpf_serve_errors_total{code=\"E_BUDGET\"}"), 1);
    assert_eq!(
        counter(&m, "dhpf_serve_errors_total{code=\"E_INTERNAL\"}"),
        0
    );
    // Serial requests never coalesce: 3 compiles ran as leaders (the
    // admission reject never reached election).
    assert_eq!(counter(&m, "dhpf_serve_coalesce_total{role=\"leader\"}"), 3);
    assert_eq!(
        counter(&m, "dhpf_serve_coalesce_total{role=\"follower\"}"),
        0
    );

    // Latency histograms: one warm sample, two cold (the error compile
    // was cold too).
    let hists = m.get("histograms").expect("histograms object");
    let warm_count = hists
        .get("dhpf_serve_request_duration_us{kind=\"warm\"}")
        .and_then(|h| h.get("count"))
        .and_then(Value::as_f64)
        .unwrap() as u64;
    let cold_count = hists
        .get("dhpf_serve_request_duration_us{kind=\"cold\"}")
        .and_then(|h| h.get("count"))
        .and_then(Value::as_f64)
        .unwrap() as u64;
    assert_eq!(warm_count, 1, "{}", replies[5]);
    assert_eq!(cold_count, 2, "{}", replies[5]);

    // The Prometheus exposition of the same registry passes the schema
    // validator and carries the same counters.
    let prom = send_lines(
        addr,
        &["{\"op\":\"metrics\",\"id\":\"m2\",\"format\":\"prometheus\"}".to_string()],
    )
    .unwrap();
    let p = parse(&prom[0]).unwrap();
    let text = p.get("prometheus").and_then(Value::as_str).unwrap();
    let sum = validate_metrics_text(text).expect("valid exposition");
    assert_eq!(
        sum.counters
            .get("dhpf_serve_requests_total{op=\"compile\"}"),
        Some(&4.0)
    );
    assert_eq!(
        sum.hist_counts
            .get("dhpf_serve_request_duration_us{kind=\"warm\"}"),
        Some(&1)
    );
    // Context gauges were refreshed at scrape time: memo tables are
    // occupied after two successful compiles.
    assert!(
        sum.gauges
            .get("dhpf_serve_memo_resident")
            .is_some_and(|&g| g > 0.0),
        "memo_resident gauge missing or zero"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn coalesced_followers_count_in_metrics() {
    let (addr, handle, join) = start_server_with(&ServeConfig::default());
    const CLIENTS: usize = 6;

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let replies = send_lines(addr, &[compile_req(&format!("c{i}"), "")]).unwrap();
                parse(&replies[0]).unwrap()
            })
        })
        .collect();
    let coalesced_responses = workers
        .into_iter()
        .map(|w| w.join().unwrap())
        .filter(|r| get_bool(r, "coalesced"))
        .count() as u64;

    let m =
        parse(&send_lines(addr, &["{\"op\":\"metrics\",\"id\":\"m\"}".to_string()]).unwrap()[0])
            .unwrap();
    let leaders = counter(&m, "dhpf_serve_coalesce_total{role=\"leader\"}");
    let followers = counter(&m, "dhpf_serve_coalesce_total{role=\"follower\"}");
    assert_eq!(leaders + followers, CLIENTS as u64);
    assert_eq!(
        followers, coalesced_responses,
        "follower counter disagrees with coalesced responses"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn want_trace_returns_schema_valid_span_tree() {
    let (addr, handle, join) = start_server_with(&ServeConfig::default());

    let replies = send_lines(addr, &[compile_req("t", ",\"want\":[\"trace\"]")]).unwrap();
    let r = parse(&replies[0]).unwrap();
    assert!(get_bool(&r, "ok"), "{}", replies[0]);
    let trace = r.get("trace").expect("trace field present");
    let spans = validate_span_tree_value(trace).expect("schema-valid span tree");
    assert!(spans > 0, "empty span tree");
    // The root span of the request is the compile span, and the phase
    // spans nest under it.
    let names: Vec<&str> = trace
        .get("spans")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"compile"), "{names:?}");
    assert!(names.contains(&"module compilation"), "{names:?}");

    // Without the want, no trace field is rendered.
    let plain = send_lines(addr, &[compile_req("t2", "")]).unwrap();
    let p = parse(&plain[0]).unwrap();
    assert!(p.get("trace").is_none(), "{}", plain[0]);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn access_log_validates_and_carries_slow_traces() {
    let dir = std::env::temp_dir().join(format!(
        "dhpf-serve-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");
    let (addr, handle, join) = start_server_with(&ServeConfig {
        access_log: Some(log_path.clone()),
        trace_slow_ms: Some(0), // every compile is "slow": all get traced
        ..ServeConfig::default()
    });

    let replies = send_lines(
        addr,
        &[
            compile_req("cold", ""),
            compile_req("warm", ""),
            compile_req("dead", ",\"options\":{\"deadline_ms\":0}"),
            "{\"op\":\"ping\",\"id\":\"p\"}".to_string(),
            "not json at all".to_string(),
        ],
    )
    .unwrap();
    assert_eq!(replies.len(), 5);

    handle.shutdown();
    join.join().unwrap();

    let text = std::fs::read_to_string(&log_path).unwrap();
    let sum =
        validate_access_log(&text).unwrap_or_else(|e| panic!("invalid access log: {e}\n{text}"));
    assert_eq!(sum.lines, 5, "{text}");
    assert_eq!(sum.by_op.get("compile"), Some(&3));
    assert_eq!(sum.by_op.get("ping"), Some(&1));
    assert_eq!(sum.by_op.get("invalid"), Some(&1));
    assert_eq!(sum.by_outcome.get("ok"), Some(&3)); // 2 compiles + ping
    assert_eq!(sum.by_outcome.get("E_BUDGET"), Some(&1));
    assert_eq!(sum.by_outcome.get("E_PROTOCOL"), Some(&1));
    // trace_slow_ms = 0 embeds a span tree in both successful compiles
    // (the admission reject never compiled, so it has none).
    assert_eq!(sum.traces, 2, "{text}");

    std::fs::remove_dir_all(&dir).ok();
}
