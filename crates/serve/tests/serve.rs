//! End-to-end tests of the dhpf-serve daemon over real TCP: round-trips,
//! warm-cache reuse, request coalescing, and per-request budget isolation.

use dhpf_obs::json::{parse, Value};
use dhpf_serve::{send_lines, Server, ShutdownHandle};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
enddo
end
";

fn start_server() -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", dhpf_omega::DEFAULT_CACHE_CAP).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.serve().unwrap());
    (addr, handle, join)
}

fn compile_req(id: &str, extra: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{id}\",\"source\":{}{extra}}}",
        dhpf_obs::json::escape(JACOBI)
    )
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing numeric {key:?} in {v:?}")) as u64
}

fn get_bool(v: &Value, key: &str) -> bool {
    match v.get(key) {
        Some(Value::Bool(b)) => *b,
        other => panic!("missing bool {key:?}, got {other:?}"),
    }
}

#[test]
fn round_trip_and_warm_cache_reuse() {
    let (addr, handle, join) = start_server();

    let replies = send_lines(
        addr,
        &[
            "{\"op\":\"ping\",\"id\":\"p\"}".to_string(),
            compile_req("cold", ",\"want\":[\"code\",\"timing\"]"),
            compile_req("warm", ""),
            "{\"op\":\"stats\",\"id\":\"s\"}".to_string(),
        ],
    )
    .unwrap();
    assert_eq!(replies.len(), 4);

    let pong = parse(&replies[0]).unwrap();
    assert_eq!(pong.get("pong"), Some(&Value::Bool(true)));

    let cold = parse(&replies[1]).unwrap();
    assert!(get_bool(&cold, "ok"), "{}", replies[1]);
    assert_eq!(get_u64(&cold, "units"), 1);
    assert!(get_u64(&cold, "comm_events") > 0);
    assert!(!get_bool(&cold, "warm"));
    let code = cold.get("code").and_then(Value::as_str).unwrap();
    assert!(code.contains("call comm_send(0)"), "{code}");
    assert!(cold.get("timing").and_then(Value::as_arr).is_some());

    // The second identical request must find the memo tables warm: the
    // warm flag flips, and hits gained during the request are nonzero.
    let warm = parse(&replies[2]).unwrap();
    assert!(get_bool(&warm, "ok"), "{}", replies[2]);
    assert!(get_bool(&warm, "warm"));
    assert!(
        get_u64(&warm, "cache_hits_delta") > 0,
        "warm request gained no cache hits: {}",
        replies[2]
    );

    let stats = parse(&replies[3]).unwrap();
    assert_eq!(get_u64(&stats, "requests"), 2);
    assert!(get_u64(&stats, "memo_entries") > 0);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_duplicates_coalesce() {
    let (addr, handle, join) = start_server();
    const CLIENTS: usize = 8;

    // All clients connect first, then fire the identical request through
    // the barrier, so the duplicates arrive while the leader compiles.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let replies = send_lines(addr, &[compile_req(&format!("c{i}"), "")]).unwrap();
                parse(&replies[0]).unwrap()
            })
        })
        .collect();
    let replies: Vec<Value> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let mut coalesced = 0u64;
    let mut max_dedup = 0u64;
    for r in &replies {
        assert!(get_bool(r, "ok"), "{r:?}");
        assert_eq!(get_u64(r, "units"), 1);
        if get_bool(r, "coalesced") {
            coalesced += 1;
        }
        max_dedup = max_dedup.max(get_u64(r, "dedup_hits"));
    }
    assert!(
        coalesced > 0,
        "no request coalesced across {CLIENTS} simultaneous duplicates"
    );
    assert_eq!(
        max_dedup, coalesced,
        "server dedup counter disagrees with coalesced responses"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn zero_deadline_rejected_without_harming_neighbours() {
    let (addr, handle, join) = start_server();

    // Connection A: expired-on-arrival request gets the typed budget code.
    let rejected = send_lines(
        addr,
        &[compile_req("dead", ",\"options\":{\"deadline_ms\":0}")],
    )
    .unwrap();
    let r = parse(&rejected[0]).unwrap();
    assert!(!get_bool(&r, "ok"));
    let code = r
        .get("error")
        .unwrap()
        .get("code")
        .unwrap()
        .as_str()
        .unwrap();
    assert_eq!(code, "E_BUDGET", "{}", rejected[0]);

    // Connection B: a healthy request on the same server is unaffected.
    let healthy = send_lines(addr, &[compile_req("ok", "")]).unwrap();
    let h = parse(&healthy[0]).unwrap();
    assert!(get_bool(&h, "ok"), "{}", healthy[0]);
    assert_eq!(get_u64(&h, "units"), 1);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn protocol_errors_are_typed_and_non_fatal() {
    let (addr, handle, join) = start_server();

    // One connection sends garbage, then a bad op, then a valid compile:
    // the connection must survive both errors.
    let replies = send_lines(
        addr,
        &[
            "this is not json".to_string(),
            "{\"op\":\"frobnicate\",\"id\":\"x\"}".to_string(),
            compile_req("after", ""),
        ],
    )
    .unwrap();
    assert_eq!(replies.len(), 3);
    for bad in &replies[..2] {
        let v = parse(bad).unwrap();
        assert!(!get_bool(&v, "ok"));
        let code = v
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(code, "E_PROTOCOL", "{bad}");
    }
    let good = parse(&replies[2]).unwrap();
    assert!(get_bool(&good, "ok"), "{}", replies[2]);

    // A frontend error is typed too, and still carries cache counters.
    let failed = send_lines(
        addr,
        &["{\"op\":\"compile\",\"id\":\"bad\",\"source\":\"program p\\nsyntax? error!\\nend\\n\"}"
            .to_string()],
    )
    .unwrap();
    let f = parse(&failed[0]).unwrap();
    assert!(!get_bool(&f, "ok"));
    let code = f
        .get("error")
        .unwrap()
        .get("code")
        .unwrap()
        .as_str()
        .unwrap();
    assert!(
        dhpf_omega::ErrorCode::parse(code).is_some(),
        "unknown error code {code:?}"
    );

    handle.shutdown();
    join.join().unwrap();
}
