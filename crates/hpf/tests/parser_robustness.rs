//! Frontend robustness: malformed programs produce positioned errors,
//! never panics; tricky-but-legal inputs parse.

use dhpf_hpf::{analyze, parse};

fn err_of(src: &str) -> String {
    match parse(src) {
        Err(e) => e.to_string(),
        Ok(prog) => match prog.units.first().map(analyze) {
            Some(Err(e)) => e.to_string(),
            _ => panic!("expected an error for: {src}"),
        },
    }
}

#[test]
fn missing_end_is_an_error() {
    let e = err_of("program p\nx = 1\n");
    assert!(e.contains("end"), "{e}");
}

#[test]
fn unterminated_do_is_an_error() {
    let e = err_of("program p\ndo i = 1, 10\n  x = 1\nend\n");
    // 'end' closes the unit while the DO block wants enddo.
    assert!(!e.is_empty());
}

#[test]
fn bad_expression_is_positioned() {
    let e = err_of("program p\nx = 1 +\nend\n");
    assert!(e.contains("parse error"), "{e}");
    assert!(e.contains(':'), "has line:col: {e}");
}

#[test]
fn unknown_directive_is_an_error() {
    let e = err_of("program p\n!HPF$ frobnicate x\nx = 1\nend\n");
    assert!(e.contains("frobnicate"), "{e}");
}

#[test]
fn distribute_arity_mismatch() {
    let e = err_of(
        "program p\nreal a(10)\n!HPF$ template t(10)\n!HPF$ distribute t(block,block) onto q\na(1) = 0.0\nend\n",
    );
    assert!(e.contains("rank") || e.contains("match"), "{e}");
}

#[test]
fn align_of_undeclared_array() {
    let e = err_of("program p\n!HPF$ template t(10)\n!HPF$ align z(i) with t(i)\nx = 1\nend\n");
    assert!(e.contains("undeclared"), "{e}");
}

#[test]
fn cyclic_k_requires_constant() {
    let e = err_of(
        "program p\nreal a(10)\n!HPF$ processors q(2)\n!HPF$ template t(10)\n!HPF$ align a(i) with t(i)\n!HPF$ distribute t(cyclic(k)) onto q\na(1) = 0.0\nend\n",
    );
    assert!(e.contains("cyclic"), "{e}");
}

#[test]
fn case_insensitivity_and_continuations() {
    let prog =
        parse("PROGRAM Mixed\nREAL A(10)\nDO I = 1, &\n   10\n  A(I) = I * 1.0\nENDDO\nEND\n")
            .unwrap();
    assert_eq!(prog.units[0].name, "mixed");
}

#[test]
fn end_do_and_end_if_spellings() {
    let prog =
        parse("program p\ndo i = 1, 3\n  if (i > 1) then\n    x = i\n  end if\nend do\nend\n")
            .unwrap();
    assert_eq!(prog.units[0].body.len(), 1);
}

#[test]
fn one_line_if() {
    let prog = parse("program p\nif (x > 0) y = 1\nend\n").unwrap();
    match &prog.units[0].body[0].kind {
        dhpf_hpf::StmtKind::If { then_body, .. } => assert_eq!(then_body.len(), 1),
        other => panic!("expected IF, got {other:?}"),
    }
}

#[test]
fn multiple_units() {
    let prog =
        parse("program main\nx = 1\nend\nsubroutine helper(a, b)\nreal a(10)\na(1) = b\nend\n")
            .unwrap();
    assert_eq!(prog.units.len(), 2);
    assert!(!prog.units[1].is_program);
    assert_eq!(prog.units[1].args, vec!["a".to_string(), "b".to_string()]);
}

#[test]
fn negative_bounds_and_steps() {
    let prog = parse("program p\ndo i = 10, 1, -2\n  x = i\nenddo\nend\n").unwrap();
    match &prog.units[0].body[0].kind {
        dhpf_hpf::StmtKind::Do { step: Some(s), .. } => {
            assert_eq!(s.const_int(), Some(-2));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn comment_styles() {
    let prog = parse(
        "! free comment\nc classic comment\nprogram p\nx = 1 ! trailing\n* star comment\nend\n",
    )
    .unwrap();
    assert_eq!(prog.units[0].body.len(), 1);
}
