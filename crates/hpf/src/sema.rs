//! Semantic analysis: symbol tables, directive resolution, and affine
//! subscript extraction for the compiler core.

use crate::ast::*;
use crate::error::HpfError;
use std::collections::BTreeMap;

/// An affine integer expression over *named* variables (loop indices and
/// symbolic integer scalars), as extracted from source expressions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Affine {
    /// `(variable name, coefficient)` pairs, no duplicates, sorted.
    pub terms: Vec<(String, i64)>,
    /// Constant term.
    pub constant: i64,
}

impl Affine {
    /// The constant affine expression.
    pub fn constant(c: i64) -> Affine {
        Affine {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The single-variable affine expression `v`.
    pub fn var(name: &str) -> Affine {
        Affine {
            terms: vec![(name.to_string(), 1)],
            constant: 0,
        }
    }

    /// Adds `k * name` in place.
    pub fn add_term(&mut self, name: &str, k: i64) {
        if k == 0 {
            return;
        }
        match self.terms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => {
                self.terms[i].1 += k;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (name.to_string(), k)),
        }
    }

    /// Returns `self + k * other`.
    pub fn add_scaled(&self, other: &Affine, k: i64) -> Affine {
        let mut out = self.clone();
        for (n, c) in &other.terms {
            out.add_term(n, c * k);
        }
        out.constant += other.constant * k;
        out
    }

    /// Folds to a constant if variable-free.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }
}

/// Intrinsic function names recognized in expressions.
pub const INTRINSICS: &[&str] = &[
    "abs",
    "max",
    "min",
    "sqrt",
    "mod",
    "float",
    "dble",
    "real",
    "int",
    "number_of_processors",
    "exp",
    "log",
    "sign",
];

/// Information about a declared array.
#[derive(Clone, Debug)]
pub struct ArrayInfo {
    /// Element type.
    pub ty: TypeName,
    /// Per-dimension `(lower, upper)` bounds, affine over symbolic scalars.
    pub dims: Vec<(Affine, Affine)>,
    /// Alignment with a template, if any.
    pub align: Option<AlignInfo>,
}

/// A resolved `ALIGN` directive for one array.
#[derive(Clone, Debug)]
pub struct AlignInfo {
    /// Target template name.
    pub template: String,
    /// One entry per template dimension.
    pub subs: Vec<AlignMap>,
}

/// How one template dimension relates to the array's dimensions.
#[derive(Clone, Debug, PartialEq)]
pub enum AlignMap {
    /// `Σ coeffs[d] * array_index[d] + constant` (affine in array indices).
    Affine {
        /// Coefficient per array dimension.
        coeffs: Vec<i64>,
        /// Constant offset.
        constant: i64,
    },
    /// `*` — the array is replicated along this template dimension.
    Star,
}

/// Information about a template.
#[derive(Clone, Debug)]
pub struct TemplateInfo {
    /// Extent (size) per dimension; lower bound is 1.
    pub extents: Vec<Affine>,
    /// Its distribution, if the template is distributed.
    pub dist: Option<DistInfo>,
}

/// A resolved `DISTRIBUTE` directive.
#[derive(Clone, Debug)]
pub struct DistInfo {
    /// Target processor array.
    pub onto: String,
    /// Format per template dimension (`Star` dims are not distributed).
    pub formats: Vec<DistFormat>,
}

/// One processor-array dimension extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcDim {
    /// Known constant number of processors.
    Known(i64),
    /// Symbolic (unknown at compile time).
    Symbolic,
}

/// Information about a processor array.
#[derive(Clone, Debug)]
pub struct ProcInfo {
    /// Extents per dimension.
    pub dims: Vec<ProcDim>,
}

/// Kind of a scalar variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarKind {
    /// Compile-time constant (from `parameter`).
    Constant(i64),
    /// Runtime input (from `read`) or dummy argument: symbolic.
    Symbolic,
    /// Ordinary local scalar.
    Local,
}

/// Information about a scalar.
#[derive(Clone, Debug)]
pub struct ScalarInfo {
    /// Element type.
    pub ty: TypeName,
    /// How the scalar behaves for analysis.
    pub kind: ScalarKind,
}

/// The analyzed form of one program unit.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The unit's AST (with directives stripped of ON_HOME).
    pub unit: Unit,
    /// Declared arrays.
    pub arrays: BTreeMap<String, ArrayInfo>,
    /// Declared scalars.
    pub scalars: BTreeMap<String, ScalarInfo>,
    /// Templates.
    pub templates: BTreeMap<String, TemplateInfo>,
    /// Processor arrays.
    pub procs: BTreeMap<String, ProcInfo>,
}

impl Analysis {
    /// Extracts an affine form of `expr` in terms of loop variables and
    /// symbolic scalars, folding `parameter` constants.
    ///
    /// `loop_vars` are the names currently bound by enclosing DO loops.
    /// Returns `None` for non-affine expressions.
    pub fn affine_of(&self, expr: &Expr, loop_vars: &[String]) -> Option<Affine> {
        match expr {
            Expr::Int(v) => Some(Affine::constant(*v)),
            Expr::Real(_) => None,
            Expr::Var(name) => {
                if loop_vars.contains(name) {
                    return Some(Affine::var(name));
                }
                match self.scalars.get(name).map(|s| s.kind) {
                    Some(ScalarKind::Constant(v)) => Some(Affine::constant(v)),
                    Some(ScalarKind::Symbolic) => Some(Affine::var(name)),
                    // A declared local integer scalar may be mutated at any
                    // point, so it is not a safe symbol.
                    Some(ScalarKind::Local) => None,
                    // An undeclared name is an implicitly-typed integer; the
                    // relevant case is the index of an enclosing *serial*
                    // loop (e.g. a time-step loop), which behaves as a
                    // symbolic constant within the nest being analyzed.
                    None => Some(Affine::var(name)),
                }
            }
            Expr::Un(UnOp::Neg, e) => {
                let a = self.affine_of(e, loop_vars)?;
                Some(Affine::constant(0).add_scaled(&a, -1))
            }
            Expr::Bin(op, a, b) => {
                let (fa, fb) = (self.affine_of(a, loop_vars), self.affine_of(b, loop_vars));
                match op {
                    BinOp::Add => Some(fa?.add_scaled(&fb?, 1)),
                    BinOp::Sub => Some(fa?.add_scaled(&fb?, -1)),
                    BinOp::Mul => {
                        let (fa, fb) = (fa?, fb?);
                        if let Some(k) = fa.as_const() {
                            Some(Affine::constant(0).add_scaled(&fb, k))
                        } else {
                            fb.as_const()
                                .map(|k| Affine::constant(0).add_scaled(&fa, k))
                        }
                    }
                    BinOp::Div => {
                        let (fa, fb) = (fa?, fb?);
                        let k = fb.as_const()?;
                        let c = fa.as_const()?;
                        if k != 0 && c % k == 0 {
                            Some(Affine::constant(c / k))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// True if `name` is a declared array.
    pub fn is_array(&self, name: &str) -> bool {
        self.arrays.contains_key(name)
    }
}

/// Analyzes one program unit.
///
/// # Errors
///
/// Returns an [`HpfError`] for undeclared arrays in directives, arity
/// mismatches between arrays/templates/processors, or non-affine `ALIGN`
/// subscripts.
pub fn analyze(unit: &Unit) -> Result<Analysis, HpfError> {
    let span = unit.body.first().map(|s| s.span).unwrap_or_default();
    let mut a = Analysis {
        unit: unit.clone(),
        arrays: BTreeMap::new(),
        scalars: BTreeMap::new(),
        templates: BTreeMap::new(),
        procs: BTreeMap::new(),
    };
    // Parameter constants first.
    let mut consts: BTreeMap<String, i64> = BTreeMap::new();
    for p in &unit.params {
        let v = fold_const(&p.value, &consts).ok_or_else(|| {
            HpfError::sema(span, format!("parameter '{}' is not a constant", p.name))
        })?;
        consts.insert(p.name.clone(), v);
    }
    // Variables read at runtime are symbolic.
    let mut symbolic: Vec<String> = unit.args.clone();
    collect_read_vars(&unit.body, &mut symbolic);
    // Declarations.
    for d in &unit.decls {
        for e in &d.entities {
            if e.dims.is_empty() {
                let kind = if let Some(v) = consts.get(&e.name) {
                    ScalarKind::Constant(*v)
                } else if symbolic.contains(&e.name) {
                    ScalarKind::Symbolic
                } else {
                    ScalarKind::Local
                };
                a.scalars
                    .insert(e.name.clone(), ScalarInfo { ty: d.ty, kind });
            } else {
                let mut dims = Vec::new();
                for (lb, ub) in &e.dims {
                    let lo = match lb {
                        Some(e) => affine_spec(e, &consts, &symbolic)
                            .ok_or_else(|| HpfError::sema(span, "array bound is not affine"))?,
                        None => Affine::constant(1),
                    };
                    let hi = affine_spec(ub, &consts, &symbolic)
                        .ok_or_else(|| HpfError::sema(span, "array bound is not affine"))?;
                    dims.push((lo, hi));
                }
                a.arrays.insert(
                    e.name.clone(),
                    ArrayInfo {
                        ty: d.ty,
                        dims,
                        align: None,
                    },
                );
            }
        }
    }
    // Directives.
    for dir in &unit.directives {
        match dir {
            Directive::Processors { name, extents } => {
                let dims = extents
                    .iter()
                    .map(|e| match e {
                        ProcExtent::Lit(v) => ProcDim::Known(*v),
                        ProcExtent::Sym(e) => match fold_const(e, &consts) {
                            Some(v) => ProcDim::Known(v),
                            None => ProcDim::Symbolic,
                        },
                    })
                    .collect();
                a.procs.insert(name.clone(), ProcInfo { dims });
            }
            Directive::Template { name, extents } => {
                let ex = extents
                    .iter()
                    .map(|e| {
                        affine_spec(e, &consts, &symbolic)
                            .ok_or_else(|| HpfError::sema(span, "template extent is not affine"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                a.templates.insert(
                    name.clone(),
                    TemplateInfo {
                        extents: ex,
                        dist: None,
                    },
                );
            }
            Directive::Align {
                array,
                dummies,
                target,
                subs,
            } => {
                let rank = a
                    .arrays
                    .get(array)
                    .ok_or_else(|| {
                        HpfError::sema(span, format!("align of undeclared array '{array}'"))
                    })?
                    .dims
                    .len();
                if dummies.len() != rank {
                    return Err(HpfError::sema(
                        span,
                        format!("align dummies of '{array}' do not match its rank {rank}"),
                    ));
                }
                let mut maps = Vec::new();
                for s in subs {
                    match s {
                        AlignSub::Star => maps.push(AlignMap::Star),
                        AlignSub::Expr(e) => {
                            let af = affine_in_dummies(e, dummies, &consts).ok_or_else(|| {
                                HpfError::sema(
                                    span,
                                    format!("align subscript for '{array}' is not affine"),
                                )
                            })?;
                            maps.push(af);
                        }
                    }
                }
                if let Some(info) = a.arrays.get_mut(array) {
                    info.align = Some(AlignInfo {
                        template: target.clone(),
                        subs: maps,
                    });
                }
            }
            Directive::Distribute {
                template,
                formats,
                onto,
            } => {
                let t = a.templates.get_mut(template).ok_or_else(|| {
                    HpfError::sema(span, format!("distribute of unknown template '{template}'"))
                })?;
                if formats.len() != t.extents.len() {
                    return Err(HpfError::sema(
                        span,
                        format!(
                            "distribute formats ({}) do not match template rank ({})",
                            formats.len(),
                            t.extents.len()
                        ),
                    ));
                }
                t.dist = Some(DistInfo {
                    onto: onto.clone(),
                    formats: formats.clone(),
                });
            }
            Directive::OnHome { .. } => {}
        }
    }
    // Validate distributions against processor arrays.
    for (tname, t) in &a.templates {
        if let Some(dist) = &t.dist {
            let p = a.procs.get(&dist.onto).ok_or_else(|| {
                HpfError::sema(
                    span,
                    format!(
                        "template '{tname}' distributed onto unknown '{}'",
                        dist.onto
                    ),
                )
            })?;
            let dist_dims = dist
                .formats
                .iter()
                .filter(|f| !matches!(f, DistFormat::Star))
                .count();
            if dist_dims != p.dims.len() {
                return Err(HpfError::sema(
                    span,
                    format!(
                        "template '{tname}': {dist_dims} distributed dims but '{}' has rank {}",
                        dist.onto,
                        p.dims.len()
                    ),
                ));
            }
        }
    }
    Ok(a)
}

fn collect_read_vars(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match &s.kind {
            StmtKind::Read { vars } => out.extend(vars.iter().cloned()),
            StmtKind::Do { body, .. } => collect_read_vars(body, out),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_read_vars(then_body, out);
                collect_read_vars(else_body, out);
            }
            _ => {}
        }
    }
}

fn fold_const(e: &Expr, consts: &BTreeMap<String, i64>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Var(n) => consts.get(n).copied(),
        Expr::Un(UnOp::Neg, e) => fold_const(e, consts).map(|v| -v),
        Expr::Bin(op, a, b) => {
            let (a, b) = (fold_const(a, consts)?, fold_const(b, consts)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a.checked_div(b)?,
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Affine form of a specification expression over symbolic scalars only.
fn affine_spec(e: &Expr, consts: &BTreeMap<String, i64>, symbolic: &[String]) -> Option<Affine> {
    match e {
        Expr::Int(v) => Some(Affine::constant(*v)),
        Expr::Var(n) => {
            if let Some(v) = consts.get(n) {
                Some(Affine::constant(*v))
            } else if symbolic.contains(n) {
                Some(Affine::var(n))
            } else {
                // Unknown name in a spec expr: treat as symbolic.
                Some(Affine::var(n))
            }
        }
        Expr::Un(UnOp::Neg, e) => {
            let a = affine_spec(e, consts, symbolic)?;
            Some(Affine::constant(0).add_scaled(&a, -1))
        }
        Expr::Bin(op, a, b) => {
            let fa = affine_spec(a, consts, symbolic)?;
            let fb = affine_spec(b, consts, symbolic)?;
            match op {
                BinOp::Add => Some(fa.add_scaled(&fb, 1)),
                BinOp::Sub => Some(fa.add_scaled(&fb, -1)),
                BinOp::Mul => {
                    if let Some(k) = fa.as_const() {
                        Some(Affine::constant(0).add_scaled(&fb, k))
                    } else {
                        fb.as_const()
                            .map(|k| Affine::constant(0).add_scaled(&fa, k))
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Affine form `Σ c_d * dummy_d + k` of an align subscript.
fn affine_in_dummies(
    e: &Expr,
    dummies: &[String],
    consts: &BTreeMap<String, i64>,
) -> Option<AlignMap> {
    let af = affine_spec(e, consts, dummies)?;
    let mut coeffs = vec![0i64; dummies.len()];
    for (name, c) in &af.terms {
        let d = dummies.iter().position(|x| x == name)?;
        coeffs[d] = *c;
    }
    Some(AlignMap::Affine {
        coeffs,
        constant: af.constant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FIG2: &str = "
program fig2
real a(0:99,100), b(100,100)
integer n
!HPF$ processors p(4)
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i+1,j)
!HPF$ align b(i,j) with t(*,i)
!HPF$ distribute t(*,block) onto p
read *, n
do i = 1, n
  do j = 2, n+1
!HPF$ on_home b(j-1,i)
    a(i,j) = b(j-1,i)
  enddo
enddo
end
";

    #[test]
    fn analyze_figure2_program() {
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        assert_eq!(a.arrays.len(), 2);
        assert_eq!(a.arrays["a"].dims[0].0.as_const(), Some(0));
        assert_eq!(a.arrays["a"].dims[0].1.as_const(), Some(99));
        let al = a.arrays["a"].align.as_ref().unwrap();
        assert_eq!(al.template, "t");
        assert_eq!(
            al.subs[0],
            AlignMap::Affine {
                coeffs: vec![1, 0],
                constant: 1
            }
        );
        let bl = a.arrays["b"].align.as_ref().unwrap();
        assert_eq!(bl.subs[0], AlignMap::Star);
        assert_eq!(
            bl.subs[1],
            AlignMap::Affine {
                coeffs: vec![1, 0],
                constant: 0
            }
        );
        let t = &a.templates["t"];
        let d = t.dist.as_ref().unwrap();
        assert_eq!(d.formats, vec![DistFormat::Star, DistFormat::Block]);
        assert_eq!(a.procs["p"].dims, vec![ProcDim::Known(4)]);
        assert_eq!(a.scalars["n"].kind, ScalarKind::Symbolic);
    }

    #[test]
    fn on_home_attaches_to_statement() {
        let prog = parse(FIG2).unwrap();
        let unit = &prog.units[0];
        // find the assignment
        fn find_assign(body: &[Stmt]) -> Option<&StmtKind> {
            for s in body {
                match &s.kind {
                    StmtKind::Assign { .. } => return Some(&s.kind),
                    StmtKind::Do { body, .. } => {
                        if let Some(k) = find_assign(body) {
                            return Some(k);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let k = find_assign(&unit.body).unwrap();
        match k {
            StmtKind::Assign { on_home, .. } => {
                let refs = on_home.as_ref().unwrap();
                assert_eq!(refs[0].0, "b");
                assert_eq!(refs[0].1.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn affine_extraction() {
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let loop_vars = vec!["i".to_string(), "j".to_string()];
        // j - 1 is affine
        let e = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Var("j".into())),
            Box::new(Expr::Int(1)),
        );
        let af = a.affine_of(&e, &loop_vars).unwrap();
        assert_eq!(af.terms, vec![("j".to_string(), 1)]);
        assert_eq!(af.constant, -1);
        // n + 1 is affine via the symbolic scalar n
        let e2 = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var("n".into())),
            Box::new(Expr::Int(1)),
        );
        let af2 = a.affine_of(&e2, &loop_vars).unwrap();
        assert_eq!(af2.terms, vec![("n".to_string(), 1)]);
        // i * j is not affine
        let e3 = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Var("i".into())),
            Box::new(Expr::Var("j".into())),
        );
        assert!(a.affine_of(&e3, &loop_vars).is_none());
    }

    #[test]
    fn symbolic_processors() {
        let src = "
program s
real a(100)
!HPF$ processors q(number_of_processors())
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ distribute t(block) onto q
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        assert_eq!(a.procs["q"].dims, vec![ProcDim::Symbolic]);
    }

    #[test]
    fn errors_on_bad_directives() {
        let src = "
program s
real a(100)
!HPF$ template t(100)
!HPF$ distribute t(block,block) onto q
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        assert!(analyze(&prog.units[0]).is_err());
    }
}
