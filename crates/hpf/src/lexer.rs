//! Lexer for the mini-Fortran/HPF language (free-form, case-insensitive).

use crate::error::HpfError;
use crate::token::{Span, Tok};

/// Tokenizes `src` into `(token, span)` pairs, ending with [`Tok::Eof`].
///
/// Comment lines start with `!`; directive lines start with `!hpf$` or
/// `chpf$` (any case) and are lexed into [`Tok::Directive`]. Newlines become
/// [`Tok::Eos`] statement separators; `&` at end of line continues the
/// statement.
///
/// # Errors
///
/// Returns [`HpfError`] on malformed numeric literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<(Tok, Span)>, HpfError> {
    let mut out = Vec::new();
    let mut line_no: u32 = 1;
    let mut offset = 0usize;
    let mut continued = false;
    for raw_line in src.split('\n') {
        let line = raw_line.trim_end_matches('\r');
        let trimmed = line.trim_start();
        let lead = line.len() - trimmed.len();
        let lower = trimmed.to_ascii_lowercase();
        let span0 = Span {
            offset: offset + lead,
            line: line_no,
            col: lead as u32 + 1,
        };
        if lower.starts_with("!hpf$") || lower.starts_with("chpf$") || lower.starts_with("*hpf$") {
            let body = trimmed[5..].trim().to_ascii_lowercase();
            out.push((Tok::Directive(body), span0));
            out.push((Tok::Eos, span0));
        } else if trimmed.starts_with('!')
            || trimmed.starts_with('*')
            || (lower.starts_with('c') && lower.len() == 1)
            || lower.starts_with("c ")
        {
            // Comment line: ignored. ('c' in column 1 — classic Fortran.)
        } else if !trimmed.is_empty() {
            let mut cont_next = false;
            lex_code_line(trimmed, span0, &mut out, &mut cont_next)?;
            if !cont_next {
                let end = Span {
                    offset: offset + line.len(),
                    line: line_no,
                    col: line.len() as u32 + 1,
                };
                if !continued || !out.is_empty() {
                    out.push((Tok::Eos, end));
                }
            }
            continued = cont_next;
        }
        offset += raw_line.len() + 1;
        line_no += 1;
    }
    let eof = Span {
        offset,
        line: line_no,
        col: 1,
    };
    out.push((Tok::Eof, eof));
    Ok(out)
}

fn lex_code_line(
    line: &str,
    base: Span,
    out: &mut Vec<(Tok, Span)>,
    cont_next: &mut bool,
) -> Result<(), HpfError> {
    let b = line.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        let span = Span {
            offset: base.offset + i,
            line: base.line,
            col: base.col + i as u32,
        };
        if c == '!' {
            break; // trailing comment
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '&' {
            *cont_next = true;
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < b.len() && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            out.push((Tok::Ident(line[i..j].to_ascii_lowercase()), span));
            i = j;
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit())
        {
            let mut j = i;
            let mut is_real = false;
            while j < b.len() && (b[j] as char).is_ascii_digit() {
                j += 1;
            }
            // Decimal part (but not `..` or `.and.`).
            if j < b.len() && b[j] == b'.' {
                let rest = &line[j + 1..];
                let dotted_op = [
                    "and.", "or.", "not.", "lt.", "le.", "gt.", "ge.", "eq.", "ne.",
                ]
                .iter()
                .any(|k| rest.to_ascii_lowercase().starts_with(k));
                if !dotted_op {
                    is_real = true;
                    j += 1;
                    while j < b.len() && (b[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            // Exponent.
            if j < b.len() && matches!(b[j] as char, 'e' | 'E' | 'd' | 'D') {
                let mut k = j + 1;
                if k < b.len() && matches!(b[k] as char, '+' | '-') {
                    k += 1;
                }
                if k < b.len() && (b[k] as char).is_ascii_digit() {
                    is_real = true;
                    j = k;
                    while j < b.len() && (b[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            let text = line[i..j].replace(['d', 'D'], "e");
            if is_real {
                let v: f64 = text
                    .parse()
                    .map_err(|_| HpfError::lex(span, format!("bad real literal '{text}'")))?;
                out.push((Tok::Real(v), span));
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| HpfError::lex(span, format!("bad integer literal '{text}'")))?;
                out.push((Tok::Int(v), span));
            }
            i = j;
            continue;
        }
        if c == '.' {
            // Dotted operator.
            let rest = line[i + 1..].to_ascii_lowercase();
            let ops = [
                ("and.", ".and."),
                ("or.", ".or."),
                ("not.", ".not."),
                ("lt.", "<"),
                ("le.", "<="),
                ("gt.", ">"),
                ("ge.", ">="),
                ("eq.", "=="),
                ("ne.", "/="),
                ("true.", ".true."),
                ("false.", ".false."),
            ];
            let mut matched = false;
            for (pat, sym) in ops {
                if rest.starts_with(pat) {
                    out.push((Tok::Sym(sym), span));
                    i += 1 + pat.len();
                    matched = true;
                    break;
                }
            }
            if matched {
                continue;
            }
            return Err(HpfError::lex(span, "unexpected '.'".to_string()));
        }
        let two = if i + 1 < b.len() { &line[i..i + 2] } else { "" };
        let sym: &'static str = match two {
            "**" => "**",
            "==" => "==",
            "/=" => "/=",
            "<=" => "<=",
            ">=" => ">=",
            "::" => "::",
            _ => match c {
                '(' => "(",
                ')' => ")",
                ',' => ",",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                ':' => ":",
                _ => {
                    return Err(HpfError::lex(span, format!("unexpected character '{c}'")));
                }
            },
        };
        out.push((Tok::Sym(sym), span));
        i += sym.len();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lex_statement() {
        let t = toks("A(i,j) = B(j-1,i) * 0.25");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Sym("("),
                Tok::Ident("i".into()),
                Tok::Sym(","),
                Tok::Ident("j".into()),
                Tok::Sym(")"),
                Tok::Sym("="),
                Tok::Ident("b".into()),
                Tok::Sym("("),
                Tok::Ident("j".into()),
                Tok::Sym("-"),
                Tok::Int(1),
                Tok::Sym(","),
                Tok::Ident("i".into()),
                Tok::Sym(")"),
                Tok::Sym("*"),
                Tok::Real(0.25),
                Tok::Eos,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_directive_and_comments() {
        let t = toks("! a comment\n!HPF$ distribute T(block,*) onto P\nx = 1");
        assert!(matches!(&t[0], Tok::Directive(d) if d.starts_with("distribute")));
        assert_eq!(t[1], Tok::Eos);
        assert_eq!(t[2], Tok::Ident("x".into()));
    }

    #[test]
    fn lex_dotted_operators() {
        let t = toks("if (a .lt. b .and. c .ge. 1.5) then");
        assert!(t.contains(&Tok::Sym("<")));
        assert!(t.contains(&Tok::Sym(".and.")));
        assert!(t.contains(&Tok::Sym(">=")));
        assert!(t.contains(&Tok::Real(1.5)));
    }

    #[test]
    fn lex_continuation() {
        let t = toks("x = 1 + &\n    2");
        let eos_count = t.iter().filter(|t| **t == Tok::Eos).count();
        assert_eq!(eos_count, 1, "{t:?}");
    }

    #[test]
    fn lex_real_with_exponent() {
        let t = toks("y = 1.5e-3 + 2d0");
        assert!(t.contains(&Tok::Real(0.0015)));
        assert!(t.contains(&Tok::Real(2.0)));
    }

    #[test]
    fn lex_errors_positioned() {
        let err = lex("x = $").unwrap_err();
        assert!(err.to_string().contains("1:5"), "{err}");
    }
}
