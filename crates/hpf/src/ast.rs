//! Abstract syntax of the mini-Fortran/HPF language.

use crate::token::Span;

/// A whole source file: one or more program units.
#[derive(Clone, Debug, Default)]
pub struct SourceProgram {
    /// Program units in source order (main program first by convention).
    pub units: Vec<Unit>,
}

/// A program unit (main program or subroutine).
#[derive(Clone, Debug)]
pub struct Unit {
    /// Unit name (lower-cased).
    pub name: String,
    /// Whether this is the main program.
    pub is_program: bool,
    /// Dummy argument names (subroutines).
    pub args: Vec<String>,
    /// Type declarations.
    pub decls: Vec<Decl>,
    /// `parameter` constant definitions.
    pub params: Vec<ParamDef>,
    /// HPF directives declared in the unit.
    pub directives: Vec<Directive>,
    /// Executable statements.
    pub body: Vec<Stmt>,
}

/// Scalar element types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeName {
    /// `integer`
    Integer,
    /// `real`
    Real,
}

/// A declaration statement (`real A(0:99,100), B(100,100)`).
#[derive(Clone, Debug)]
pub struct Decl {
    /// Element type.
    pub ty: TypeName,
    /// Declared entities.
    pub entities: Vec<Entity>,
}

/// One declared entity with optional array dimensions.
#[derive(Clone, Debug)]
pub struct Entity {
    /// Entity name (lower-cased).
    pub name: String,
    /// `(lower, upper)` bound expressions per dimension; lower defaults to 1.
    pub dims: Vec<(Option<Expr>, Expr)>,
}

/// A `parameter (name = value)` definition.
#[derive(Clone, Debug)]
pub struct ParamDef {
    /// Constant name.
    pub name: String,
    /// Defining expression (must fold to an integer or real constant).
    pub value: Expr,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// `.not.`
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference or intrinsic/function call (resolved later).
    Ref(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// A statement with its source position.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Source position.
    pub span: Span,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `lhs(subs) = rhs`, with an optional `ON_HOME` computation partition.
    Assign {
        /// Target variable or array name.
        name: String,
        /// Subscripts (empty for scalars).
        subs: Vec<Expr>,
        /// Right-hand side.
        rhs: Expr,
        /// `!HPF$ on_home A(f(i)), B(g(i))` terms attached to this statement.
        on_home: Option<Vec<(String, Vec<Expr>)>>,
    },
    /// `do var = lo, hi [, step] ... enddo`
    Do {
        /// Loop index name.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Step (defaults to 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) then ... [else ...] endif`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
    },
    /// `call name(args)`
    Call {
        /// Callee (lower-cased).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `read *, vars` — marks scalars as runtime (symbolic) inputs.
    Read {
        /// Variables read.
        vars: Vec<String>,
    },
    /// `print *, args` — ignored by analysis, kept for fidelity.
    Print {
        /// Printed expressions.
        args: Vec<Expr>,
    },
}

/// Distribution format of one template dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistFormat {
    /// `BLOCK`
    Block,
    /// `CYCLIC`
    Cyclic,
    /// `CYCLIC(k)` with constant `k`.
    CyclicK(i64),
    /// `*` — dimension not distributed.
    Star,
}

/// One subscript of an `ALIGN` directive's target.
#[derive(Clone, Debug, PartialEq)]
pub enum AlignSub {
    /// An affine expression of the align dummies.
    Expr(Expr),
    /// `*` — replicated along this template dimension.
    Star,
}

/// An extent in a `PROCESSORS` declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcExtent {
    /// Known constant extent.
    Lit(i64),
    /// Symbolic extent (e.g. `number_of_processors()/2`).
    Sym(Expr),
}

/// HPF directives.
#[derive(Clone, Debug)]
pub enum Directive {
    /// `processors P(e1, ..., ek)`
    Processors {
        /// Processor array name.
        name: String,
        /// Extent of each dimension.
        extents: Vec<ProcExtent>,
    },
    /// `template T(n1, ..., nk)`
    Template {
        /// Template name.
        name: String,
        /// Extent expression of each dimension.
        extents: Vec<Expr>,
    },
    /// `align A(i, j) with T(f(i,j), g(i,j))`
    Align {
        /// Aligned array.
        array: String,
        /// Align dummy names.
        dummies: Vec<String>,
        /// Target template (or array).
        target: String,
        /// Target subscripts.
        subs: Vec<AlignSub>,
    },
    /// `distribute T(block, cyclic) onto P`
    Distribute {
        /// Distributed template.
        template: String,
        /// Per-dimension format.
        formats: Vec<DistFormat>,
        /// Processor array.
        onto: String,
    },
    /// `on_home A(f(i))` — consumed by the parser, attached to statements.
    OnHome {
        /// The ON_HOME reference terms.
        refs: Vec<(String, Vec<Expr>)>,
    },
}

impl Expr {
    /// Folds the expression to an integer constant if possible.
    pub fn const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Un(UnOp::Neg, e) => e.const_int().map(|v| -v),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.const_int()?, b.const_int()?);
                Some(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Pow => a.checked_pow(u32::try_from(b).ok()?)?,
                    _ => return None,
                })
            }
            _ => None,
        }
    }
}
