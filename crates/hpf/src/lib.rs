//! # dhpf-hpf — a mini-Fortran / High Performance Fortran frontend
//!
//! The source-language substrate of the dHPF reproduction: a lexer, parser,
//! and semantic analyzer for the Fortran+HPF subset the paper's analyses
//! consume — array declarations, DO loops, IF, assignments with affine
//! subscripts, and the HPF directives `PROCESSORS`, `TEMPLATE`, `ALIGN`,
//! `DISTRIBUTE` (`BLOCK`, `CYCLIC`, `CYCLIC(K)`, `*`), and `ON_HOME`.
//!
//! ```
//! let src = "
//! program jacobi
//! real a(64,64), b(64,64)
//! !HPF$ processors p(4)
//! !HPF$ template t(64,64)
//! !HPF$ align a(i,j) with t(i,j)
//! !HPF$ align b(i,j) with t(i,j)
//! !HPF$ distribute t(block,*) onto p
//! do i = 2, 63
//!   do j = 2, 63
//!     a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
//!   enddo
//! enddo
//! end
//! ";
//! let prog = dhpf_hpf::parse(src)?;
//! let info = dhpf_hpf::analyze(&prog.units[0])?;
//! assert!(info.is_array("a"));
//! # Ok::<(), dhpf_hpf::HpfError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;
pub mod unparse;

pub use ast::*;
pub use error::HpfError;
pub use parser::{parse, parse_directive};
pub use sema::{
    analyze, Affine, AlignInfo, AlignMap, Analysis, ArrayInfo, DistInfo, ProcDim, ProcInfo,
    ScalarInfo, ScalarKind, TemplateInfo,
};
pub use token::Span;
pub use unparse::{expr_str, stmt_str, unparse, unparse_unit};
