//! Tokens of the mini-Fortran/HPF language.

use std::fmt;

/// A source position (byte offset, 1-based line, 1-based column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset in the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Punctuation or operator.
    Sym(&'static str),
    /// A `!HPF$`/`CHPF$` directive line's body (raw text after the sigil).
    Directive(String),
    /// End of statement (newline).
    Eos,
    /// End of file.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::Sym(s) => write!(f, "{s}"),
            Tok::Directive(s) => write!(f, "!HPF$ {s}"),
            Tok::Eos => write!(f, "<newline>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}
