//! Unparsing: render the AST back to (free-form) Fortran source.
//!
//! Useful for debugging transformed programs and for readable diagnostics;
//! `parse(unparse(p))` is semantics-preserving (checked by tests).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole source program.
pub fn unparse(prog: &SourceProgram) -> String {
    let mut out = String::new();
    for unit in &prog.units {
        unparse_unit(unit, &mut out);
    }
    out
}

/// Renders one program unit.
pub fn unparse_unit(unit: &Unit, out: &mut String) {
    if unit.is_program {
        let _ = writeln!(out, "program {}", unit.name);
    } else {
        let _ = writeln!(out, "subroutine {}({})", unit.name, unit.args.join(", "));
    }
    for d in &unit.decls {
        let ty = match d.ty {
            TypeName::Integer => "integer",
            TypeName::Real => "real",
        };
        let ents: Vec<String> = d
            .entities
            .iter()
            .map(|e| {
                if e.dims.is_empty() {
                    e.name.clone()
                } else {
                    let dims: Vec<String> = e
                        .dims
                        .iter()
                        .map(|(lb, ub)| match lb {
                            Some(l) => format!("{}:{}", expr_str(l), expr_str(ub)),
                            None => expr_str(ub),
                        })
                        .collect();
                    format!("{}({})", e.name, dims.join(","))
                }
            })
            .collect();
        let _ = writeln!(out, "{ty} {}", ents.join(", "));
    }
    if !unit.params.is_empty() {
        let ps: Vec<String> = unit
            .params
            .iter()
            .map(|p| format!("{} = {}", p.name, expr_str(&p.value)))
            .collect();
        let _ = writeln!(out, "parameter ({})", ps.join(", "));
    }
    for dir in &unit.directives {
        let _ = writeln!(out, "!HPF$ {}", directive_str(dir));
    }
    for s in &unit.body {
        unparse_stmt(s, 0, out);
    }
    let _ = writeln!(out, "end");
}

/// Renders a single statement (at the given indent depth, two spaces per
/// level) — for downstream renderers that interleave source statements
/// with generated SPMD constructs.
pub fn stmt_str(s: &Stmt, depth: usize) -> String {
    let mut out = String::new();
    unparse_stmt(s, depth, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn unparse_stmt(s: &Stmt, depth: usize, out: &mut String) {
    match &s.kind {
        StmtKind::Assign {
            name,
            subs,
            rhs,
            on_home,
        } => {
            if let Some(refs) = on_home {
                indent(out, depth);
                let terms: Vec<String> = refs
                    .iter()
                    .map(|(n, ss)| {
                        format!(
                            "{n}({})",
                            ss.iter().map(expr_str).collect::<Vec<_>>().join(",")
                        )
                    })
                    .collect();
                let _ = writeln!(out, "!HPF$ on_home {}", terms.join(", "));
            }
            indent(out, depth);
            if subs.is_empty() {
                let _ = writeln!(out, "{name} = {}", expr_str(rhs));
            } else {
                let ss: Vec<String> = subs.iter().map(expr_str).collect();
                let _ = writeln!(out, "{name}({}) = {}", ss.join(","), expr_str(rhs));
            }
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            indent(out, depth);
            match step {
                Some(st) => {
                    let _ = writeln!(
                        out,
                        "do {var} = {}, {}, {}",
                        expr_str(lo),
                        expr_str(hi),
                        expr_str(st)
                    );
                }
                None => {
                    let _ = writeln!(out, "do {var} = {}, {}", expr_str(lo), expr_str(hi));
                }
            }
            for b in body {
                unparse_stmt(b, depth + 1, out);
            }
            indent(out, depth);
            out.push_str("enddo\n");
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) then", expr_str(cond));
            for b in then_body {
                unparse_stmt(b, depth + 1, out);
            }
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("else\n");
                for b in else_body {
                    unparse_stmt(b, depth + 1, out);
                }
            }
            indent(out, depth);
            out.push_str("endif\n");
        }
        StmtKind::Call { name, args } => {
            indent(out, depth);
            let ss: Vec<String> = args.iter().map(expr_str).collect();
            let _ = writeln!(out, "call {name}({})", ss.join(", "));
        }
        StmtKind::Read { vars } => {
            indent(out, depth);
            let _ = writeln!(out, "read *, {}", vars.join(", "));
        }
        StmtKind::Print { args } => {
            indent(out, depth);
            if args.is_empty() {
                out.push_str("print *\n");
            } else {
                let ss: Vec<String> = args.iter().map(expr_str).collect();
                let _ = writeln!(out, "print *, {}", ss.join(", "));
            }
        }
    }
}

fn directive_str(d: &Directive) -> String {
    match d {
        Directive::Processors { name, extents } => {
            let es: Vec<String> = extents
                .iter()
                .map(|e| match e {
                    ProcExtent::Lit(v) => v.to_string(),
                    ProcExtent::Sym(e) => expr_str(e),
                })
                .collect();
            format!("processors {name}({})", es.join(", "))
        }
        Directive::Template { name, extents } => {
            let es: Vec<String> = extents.iter().map(expr_str).collect();
            format!("template {name}({})", es.join(", "))
        }
        Directive::Align {
            array,
            dummies,
            target,
            subs,
        } => {
            let ss: Vec<String> = subs
                .iter()
                .map(|s| match s {
                    AlignSub::Star => "*".to_string(),
                    AlignSub::Expr(e) => expr_str(e),
                })
                .collect();
            format!(
                "align {array}({}) with {target}({})",
                dummies.join(","),
                ss.join(",")
            )
        }
        Directive::Distribute {
            template,
            formats,
            onto,
        } => {
            let fs: Vec<String> = formats
                .iter()
                .map(|f| match f {
                    DistFormat::Block => "block".to_string(),
                    DistFormat::Cyclic => "cyclic".to_string(),
                    DistFormat::CyclicK(k) => format!("cyclic({k})"),
                    DistFormat::Star => "*".to_string(),
                })
                .collect();
            format!("distribute {template}({}) onto {onto}", fs.join(","))
        }
        Directive::OnHome { refs } => {
            let ss: Vec<String> = refs
                .iter()
                .map(|(n, subs)| {
                    format!(
                        "{n}({})",
                        subs.iter().map(expr_str).collect::<Vec<_>>().join(",")
                    )
                })
                .collect();
            format!("on_home {}", ss.join(", "))
        }
    }
}

/// Renders an expression with minimal parentheses.
pub fn expr_str(e: &Expr) -> String {
    render(e, 0)
}

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin(op, _, _) => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
            BinOp::Pow => 6,
        },
        Expr::Un(_, _) => 7,
        _ => 8,
    }
}

fn render(e: &Expr, parent: u8) -> String {
    let my = prec(e);
    let body = match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Ref(n, args) => {
            let ss: Vec<String> = args.iter().map(|a| render(a, 0)).collect();
            format!("{n}({})", ss.join(","))
        }
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Pow => "**",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "/=",
                BinOp::And => ".and.",
                BinOp::Or => ".or.",
            };
            // Right operand of - and / needs a higher bar.
            let rb = match op {
                BinOp::Sub | BinOp::Div => my + 1,
                _ => my,
            };
            format!("{} {sym} {}", render(a, my), render(b, rb))
        }
        Expr::Un(UnOp::Neg, a) => format!("-{}", render(a, 7)),
        Expr::Un(UnOp::Not, a) => format!(".not. {}", render(a, 7)),
    };
    if my < parent {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "
program demo
integer n
real a(0:99,100), b(100,100)
parameter (n = 100)
!HPF$ processors p(4)
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i+1,j)
!HPF$ distribute t(*,block) onto p
do i = 1, n - 1
  do j = 2, n, 2
!HPF$ on_home b(j-1,i)
    a(i,j) = b(j-1,i) * 2.0 - (a(i,j) + 1.0) / 4.0
  enddo
enddo
if (n > 10) then
  print *, n
else
  read *, m
endif
end
";

    #[test]
    fn roundtrip_parses_and_preserves_structure() {
        let p1 = parse(SRC).unwrap();
        let text = unparse(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        // Structure checks.
        assert_eq!(p2.units.len(), 1);
        let (u1, u2) = (&p1.units[0], &p2.units[0]);
        assert_eq!(u1.name, u2.name);
        assert_eq!(u1.decls.len(), u2.decls.len());
        assert_eq!(u1.directives.len(), u2.directives.len());
        assert_eq!(u1.body.len(), u2.body.len());
        // Second roundtrip is a fixpoint.
        assert_eq!(text, unparse(&p2));
    }

    #[test]
    fn expr_precedence_minimal_parens() {
        let p = parse("program x\ny = a * (b + c) - d / e\nend").unwrap();
        let text = unparse(&p);
        assert!(text.contains("y = a * (b + c) - d / e"), "{text}");
    }

    #[test]
    fn on_home_survives_roundtrip() {
        let p1 = parse(SRC).unwrap();
        let text = unparse(&p1);
        assert!(text.contains("!HPF$ on_home b(j - 1,i)"), "{text}");
    }
}
