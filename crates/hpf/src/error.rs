//! Positioned errors for the HPF frontend.

use crate::token::Span;
use std::fmt;

/// An error from lexing, parsing, or semantic analysis, with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct HpfError {
    phase: Phase,
    span: Span,
    message: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Lex,
    Parse,
    Sema,
}

impl HpfError {
    pub(crate) fn lex(span: Span, message: String) -> Self {
        HpfError {
            phase: Phase::Lex,
            span,
            message,
        }
    }

    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        HpfError {
            phase: Phase::Parse,
            span,
            message: message.into(),
        }
    }

    pub(crate) fn sema(span: Span, message: impl Into<String>) -> Self {
        HpfError {
            phase: Phase::Sema,
            span,
            message: message.into(),
        }
    }

    /// The source position of the error.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The human-readable message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for HpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "semantic",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for HpfError {}
