//! Recursive-descent parser for the mini-Fortran/HPF language.

use crate::ast::*;
use crate::error::HpfError;
use crate::lexer::lex;
use crate::token::{Span, Tok};

/// Parses a full source file into a [`SourceProgram`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`HpfError`], with its position.
///
/// # Examples
///
/// ```
/// let src = "
/// program t
/// real a(10)
/// do i = 1, 10
///   a(i) = 0.0
/// enddo
/// end
/// ";
/// let prog = dhpf_hpf::parse(src)?;
/// assert_eq!(prog.units.len(), 1);
/// # Ok::<(), dhpf_hpf::HpfError>(())
/// ```
pub fn parse(src: &str) -> Result<SourceProgram, HpfError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        last_block_end: None,
    };
    let mut units = Vec::new();
    p.skip_eos();
    while !p.at_eof() {
        units.push(p.unit()?);
        p.skip_eos();
    }
    Ok(SourceProgram { units })
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    /// Which terminator keyword ended the most recent block.
    last_block_end: Option<String>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn skip_eos(&mut self) {
        while matches!(self.peek(), Tok::Eos) {
            self.pos += 1;
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), HpfError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(HpfError::parse(
                self.span(),
                format!("expected '{s}', found '{}'", self.peek()),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(x) if x == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), HpfError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(HpfError::parse(
                self.span(),
                format!("expected '{kw}', found '{}'", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, HpfError> {
        let span = self.span();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(HpfError::parse(
                span,
                format!("expected identifier, found '{t}'"),
            )),
        }
    }

    fn expect_eos(&mut self) -> Result<(), HpfError> {
        match self.peek() {
            Tok::Eos | Tok::Eof => {
                self.skip_eos();
                Ok(())
            }
            t => Err(HpfError::parse(
                self.span(),
                format!("expected end of statement, found '{t}'"),
            )),
        }
    }

    // ----- program units -------------------------------------------------

    fn unit(&mut self) -> Result<Unit, HpfError> {
        let span = self.span();
        let (is_program, name, args) = if self.eat_kw("program") {
            let name = self.ident()?;
            self.expect_eos()?;
            (true, name, Vec::new())
        } else if self.eat_kw("subroutine") {
            let name = self.ident()?;
            let mut args = Vec::new();
            if self.eat_sym("(") && !self.eat_sym(")") {
                loop {
                    args.push(self.ident()?);
                    if self.eat_sym(")") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            self.expect_eos()?;
            (false, name, args)
        } else {
            return Err(HpfError::parse(span, "expected 'program' or 'subroutine'"));
        };
        let mut unit = Unit {
            name,
            is_program,
            args,
            decls: Vec::new(),
            params: Vec::new(),
            directives: Vec::new(),
            body: Vec::new(),
        };
        let mut pending_on_home: Option<Vec<(String, Vec<Expr>)>> = None;
        loop {
            self.skip_eos();
            match self.peek().clone() {
                Tok::Eof => {
                    return Err(HpfError::parse(self.span(), "missing 'end'"));
                }
                Tok::Directive(body) => {
                    self.bump();
                    let d = parse_directive(&body, self.span())?;
                    if let Directive::OnHome { refs } = d {
                        pending_on_home = Some(refs);
                    } else {
                        unit.directives.push(d);
                    }
                }
                Tok::Ident(kw) if kw == "end" => {
                    self.bump();
                    // optional 'program'/'subroutine' [name]
                    let _ = self.eat_kw("program") || self.eat_kw("subroutine");
                    if matches!(self.peek(), Tok::Ident(_)) {
                        self.bump();
                    }
                    self.expect_eos()?;
                    return Ok(unit);
                }
                Tok::Ident(kw) if kw == "integer" || kw == "real" => {
                    self.bump();
                    let ty = if kw == "integer" {
                        TypeName::Integer
                    } else {
                        TypeName::Real
                    };
                    unit.decls.push(self.decl(ty)?);
                }
                Tok::Ident(kw) if kw == "parameter" => {
                    self.bump();
                    self.expect_sym("(")?;
                    loop {
                        let name = self.ident()?;
                        self.expect_sym("=")?;
                        let value = self.expr()?;
                        unit.params.push(ParamDef { name, value });
                        if self.eat_sym(")") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                    self.expect_eos()?;
                }
                _ => {
                    let mut stmt = self.stmt()?;
                    if let StmtKind::Assign { on_home, .. } = &mut stmt.kind {
                        *on_home = pending_on_home.take();
                    } else {
                        pending_on_home = None;
                    }
                    unit.body.push(stmt);
                }
            }
        }
    }

    fn decl(&mut self, ty: TypeName) -> Result<Decl, HpfError> {
        let mut entities = Vec::new();
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            if self.eat_sym("(") {
                loop {
                    let first = self.expr()?;
                    if self.eat_sym(":") {
                        let ub = self.expr()?;
                        dims.push((Some(first), ub));
                    } else {
                        dims.push((None, first));
                    }
                    if self.eat_sym(")") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            entities.push(Entity { name, dims });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_eos()?;
        Ok(Decl { ty, entities })
    }

    // ----- statements -----------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, HpfError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::Ident(kw) if kw == "do" => self.do_stmt()?,
            Tok::Ident(kw) if kw == "if" => self.if_stmt()?,
            Tok::Ident(kw) if kw == "call" => {
                self.bump();
                let name = self.ident()?;
                let mut args = Vec::new();
                if self.eat_sym("(") && !self.eat_sym(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_sym(")") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                self.expect_eos()?;
                StmtKind::Call { name, args }
            }
            Tok::Ident(kw) if kw == "read" => {
                self.bump();
                if self.eat_sym("(") {
                    // read(*,*) or read(*)
                    while !self.eat_sym(")") {
                        self.bump();
                    }
                } else {
                    self.expect_sym("*")?;
                }
                let _ = self.eat_sym(",");
                let mut vars = Vec::new();
                loop {
                    vars.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_eos()?;
                StmtKind::Read { vars }
            }
            Tok::Ident(kw) if kw == "print" => {
                self.bump();
                self.expect_sym("*")?;
                let mut args = Vec::new();
                while self.eat_sym(",") {
                    args.push(self.expr()?);
                }
                self.expect_eos()?;
                StmtKind::Print { args }
            }
            Tok::Ident(_) => {
                // assignment
                let name = self.ident()?;
                let mut subs = Vec::new();
                if self.eat_sym("(") && !self.eat_sym(")") {
                    loop {
                        subs.push(self.expr()?);
                        if self.eat_sym(")") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                self.expect_sym("=")?;
                let rhs = self.expr()?;
                self.expect_eos()?;
                StmtKind::Assign {
                    name,
                    subs,
                    rhs,
                    on_home: None,
                }
            }
            t => {
                return Err(HpfError::parse(span, format!("unexpected '{t}'")));
            }
        };
        Ok(Stmt { kind, span })
    }

    fn do_stmt(&mut self) -> Result<StmtKind, HpfError> {
        self.expect_kw("do")?;
        let var = self.ident()?;
        self.expect_sym("=")?;
        let lo = self.expr()?;
        self.expect_sym(",")?;
        let hi = self.expr()?;
        let step = if self.eat_sym(",") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_eos()?;
        let body = self.block(&["enddo", "end"])?;
        // 'end do' consumed as 'end' + 'do'
        Ok(StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    fn if_stmt(&mut self) -> Result<StmtKind, HpfError> {
        self.expect_kw("if")?;
        self.expect_sym("(")?;
        let cond = self.expr()?;
        self.expect_sym(")")?;
        if self.eat_kw("then") {
            self.expect_eos()?;
            let then_body = self.block(&["else", "endif", "end"])?;
            let else_body = if self.last_block_end.as_deref() == Some("else") {
                self.skip_eos();
                self.block(&["endif", "end"])?
            } else {
                Vec::new()
            };
            Ok(StmtKind::If {
                cond,
                then_body,
                else_body,
            })
        } else {
            // one-line if
            let inner = self.stmt()?;
            Ok(StmtKind::If {
                cond,
                then_body: vec![inner],
                else_body: Vec::new(),
            })
        }
    }

    /// Parses statements until one of `terminators` is seen (consumed).
    /// Records which terminator ended the block in `last_block_end`.
    fn block(&mut self, terminators: &[&str]) -> Result<Vec<Stmt>, HpfError> {
        let mut body = Vec::new();
        let mut pending_on_home: Option<Vec<(String, Vec<Expr>)>> = None;
        loop {
            self.skip_eos();
            match self.peek().clone() {
                Tok::Eof => {
                    return Err(HpfError::parse(self.span(), "unterminated block"));
                }
                Tok::Directive(b) => {
                    self.bump();
                    let d = parse_directive(&b, self.span())?;
                    if let Directive::OnHome { refs } = d {
                        pending_on_home = Some(refs);
                    }
                    // Non-ON_HOME directives inside bodies are ignored here;
                    // declaration-part directives belong to the unit.
                }
                Tok::Ident(kw) if terminators.contains(&kw.as_str()) => {
                    self.bump();
                    let mut end = kw.clone();
                    if kw == "end" {
                        // 'end do' / 'end if'
                        if self.eat_kw("do") {
                            end = "enddo".into();
                        } else if self.eat_kw("if") {
                            end = "endif".into();
                        }
                    }
                    if end != "else" {
                        self.expect_eos()?;
                    } else {
                        self.skip_eos();
                    }
                    self.last_block_end = Some(end);
                    return Ok(body);
                }
                _ => {
                    let mut stmt = self.stmt()?;
                    if let StmtKind::Assign { on_home, .. } = &mut stmt.kind {
                        *on_home = pending_on_home.take();
                    } else {
                        pending_on_home = None;
                    }
                    body.push(stmt);
                }
            }
        }
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, HpfError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, HpfError> {
        let mut lhs = self.and_expr()?;
        while self.eat_sym(".or.") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, HpfError> {
        let mut lhs = self.not_expr()?;
        while self.eat_sym(".and.") {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, HpfError> {
        if self.eat_sym(".not.") {
            let e = self.not_expr()?;
            Ok(Expr::Un(UnOp::Not, Box::new(e)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, HpfError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Sym("<") => BinOp::Lt,
            Tok::Sym("<=") => BinOp::Le,
            Tok::Sym(">") => BinOp::Gt,
            Tok::Sym(">=") => BinOp::Ge,
            Tok::Sym("==") => BinOp::Eq,
            Tok::Sym("/=") => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, HpfError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, HpfError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, HpfError> {
        if self.eat_sym("-") {
            let e = self.unary_expr()?;
            Ok(Expr::Un(UnOp::Neg, Box::new(e)))
        } else if self.eat_sym("+") {
            self.unary_expr()
        } else {
            self.pow_expr()
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, HpfError> {
        let base = self.primary()?;
        if self.eat_sym("**") {
            let exp = self.unary_expr()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> Result<Expr, HpfError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Real(v) => Ok(Expr::Real(v)),
            Tok::Sym("(") => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    Ok(Expr::Ref(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            t => Err(HpfError::parse(
                span,
                format!("unexpected '{t}' in expression"),
            )),
        }
    }
}

/// Parses the body text of a `!HPF$` directive.
pub fn parse_directive(body: &str, span: Span) -> Result<Directive, HpfError> {
    let toks = lex(body).map_err(|e| HpfError::parse(span, e.message().to_string()))?;
    let mut p = Parser {
        toks,
        pos: 0,
        last_block_end: None,
    };
    let kw = p.ident()?;
    let d = match kw.as_str() {
        "processors" => {
            let name = p.ident()?;
            let mut extents = Vec::new();
            if p.eat_sym("(") && !p.eat_sym(")") {
                loop {
                    let e = p.expr()?;
                    extents.push(match e.const_int() {
                        Some(v) => ProcExtent::Lit(v),
                        None => ProcExtent::Sym(e),
                    });
                    if p.eat_sym(")") {
                        break;
                    }
                    p.expect_sym(",")?;
                }
            } else {
                extents.push(ProcExtent::Sym(Expr::Ref(
                    "number_of_processors".into(),
                    Vec::new(),
                )));
            }
            Directive::Processors { name, extents }
        }
        "template" => {
            let name = p.ident()?;
            let mut extents = Vec::new();
            p.expect_sym("(")?;
            loop {
                extents.push(p.expr()?);
                if p.eat_sym(")") {
                    break;
                }
                p.expect_sym(",")?;
            }
            Directive::Template { name, extents }
        }
        "align" => {
            let array = p.ident()?;
            let mut dummies = Vec::new();
            if p.eat_sym("(") && !p.eat_sym(")") {
                loop {
                    dummies.push(p.ident()?);
                    if p.eat_sym(")") {
                        break;
                    }
                    p.expect_sym(",")?;
                }
            }
            p.expect_kw("with")?;
            let target = p.ident()?;
            let mut subs = Vec::new();
            p.expect_sym("(")?;
            loop {
                if p.eat_sym("*") {
                    subs.push(AlignSub::Star);
                } else {
                    subs.push(AlignSub::Expr(p.expr()?));
                }
                if p.eat_sym(")") {
                    break;
                }
                p.expect_sym(",")?;
            }
            Directive::Align {
                array,
                dummies,
                target,
                subs,
            }
        }
        "distribute" => {
            let template = p.ident()?;
            let mut formats = Vec::new();
            p.expect_sym("(")?;
            loop {
                if p.eat_sym("*") {
                    formats.push(DistFormat::Star);
                } else {
                    let f = p.ident()?;
                    match f.as_str() {
                        "block" => formats.push(DistFormat::Block),
                        "cyclic" => {
                            if p.eat_sym("(") {
                                let k = p.expr()?;
                                p.expect_sym(")")?;
                                match k.const_int() {
                                    Some(v) if v >= 1 => formats.push(DistFormat::CyclicK(v)),
                                    _ => {
                                        return Err(HpfError::parse(
                                            span,
                                            "cyclic(k) requires a positive constant k",
                                        ))
                                    }
                                }
                            } else {
                                formats.push(DistFormat::Cyclic);
                            }
                        }
                        other => {
                            return Err(HpfError::parse(
                                span,
                                format!("unknown distribution format '{other}'"),
                            ))
                        }
                    }
                }
                if p.eat_sym(")") {
                    break;
                }
                p.expect_sym(",")?;
            }
            p.expect_kw("onto")?;
            let onto = p.ident()?;
            Directive::Distribute {
                template,
                formats,
                onto,
            }
        }
        "on_home" | "onhome" | "on" => {
            if kw == "on" {
                p.expect_kw("home")?;
            }
            let mut refs = Vec::new();
            loop {
                let name = p.ident()?;
                let mut subs = Vec::new();
                p.expect_sym("(")?;
                loop {
                    subs.push(p.expr()?);
                    if p.eat_sym(")") {
                        break;
                    }
                    p.expect_sym(",")?;
                }
                refs.push((name, subs));
                if !p.eat_sym(",") {
                    break;
                }
            }
            Directive::OnHome { refs }
        }
        other => {
            return Err(HpfError::parse(
                span,
                format!("unknown directive '{other}'"),
            ));
        }
    };
    Ok(d)
}
