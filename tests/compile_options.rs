//! Compiler-option behaviour: loop splitting toggles, statistics, and the
//! pseudo-Fortran emission of compiled programs.

use dhpf::core::spmd::{NestOp, SpmdItem};
use dhpf::core::{compile, CompileOptions};
use dhpf_codegen::emit_fortran;

const STENCIL: &str = "
program s
real a(200), b(200)
!HPF$ processors p(number_of_processors())
!HPF$ template t(200)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 200
  b(i) = i * 1.0
enddo
do i = 2, 199
  a(i) = 0.5 * (b(i-1) + b(i+1))
enddo
end
";

fn count_kinds(items: &[SpmdItem]) -> (usize, usize, usize) {
    let (mut nests, mut sends, mut recvs) = (0, 0, 0);
    for it in items {
        match it {
            SpmdItem::Nest(n) => {
                nests += 1;
                for op in &n.ops {
                    match op {
                        NestOp::CommSend(_) => sends += 1,
                        NestOp::CommRecv(_) => recvs += 1,
                        NestOp::Assign(_) => {}
                    }
                }
            }
            SpmdItem::SerialLoop { body, .. } => {
                let (n, s, r) = count_kinds(body);
                nests += n;
                sends += s;
                recvs += r;
            }
            SpmdItem::Serial(_) => {}
        }
    }
    (nests, sends, recvs)
}

#[test]
fn splitting_toggle_changes_structure_not_comm() {
    let on = compile(STENCIL, &CompileOptions::new().loop_splitting(true)).unwrap();
    let off = compile(STENCIL, &CompileOptions::new().loop_splitting(false)).unwrap();
    assert_eq!(on.report.stats.split_nests, 1);
    assert_eq!(off.report.stats.split_nests, 0);
    // Same communication events either way.
    assert_eq!(on.report.stats.comm_events, off.report.stats.comm_events);
    let (_, s_on, r_on) = count_kinds(&on.program.items);
    let (_, s_off, r_off) = count_kinds(&off.program.items);
    assert_eq!(s_on, s_off);
    assert_eq!(r_on, r_off);
}

#[test]
fn split_nest_defers_receive_past_local_code() {
    let on = compile(STENCIL, &CompileOptions::default()).unwrap();
    for item in &on.program.items {
        let SpmdItem::Nest(n) = item else { continue };
        if !n.split {
            continue;
        }
        let txt = emit_fortran(&n.code, &|id| match &n.ops[id.0] {
            NestOp::Assign(_) => "COMPUTE".to_string(),
            NestOp::CommSend(_) => "SEND".to_string(),
            NestOp::CommRecv(_) => "RECV".to_string(),
        });
        let send = txt.find("SEND").expect("send present");
        let recv = txt.find("RECV").expect("recv present");
        let first_compute = txt.find("COMPUTE").expect("compute present");
        assert!(send < first_compute, "send precedes local compute:\n{txt}");
        assert!(
            recv > first_compute,
            "recv deferred past local compute:\n{txt}"
        );
        return;
    }
    panic!("no split nest found");
}

#[test]
fn stats_count_vectorized_and_contiguous() {
    let c = compile(STENCIL, &CompileOptions::default()).unwrap();
    assert_eq!(c.report.stats.comm_events, 1, "one coalesced halo exchange");
    assert_eq!(c.report.stats.fully_vectorized, 1);
    assert_eq!(
        c.report.stats.coalesced_groups, 1,
        "b(i-1) and b(i+1) coalesce"
    );
    // The coalesced event receives *both* halo elements (b[lo-1] and
    // b[hi+1]) — a non-convex union, so §3.3 correctly reports the event
    // as not provably contiguous (each per-partner message alone would
    // be; the analysis works on the event's union, per DESIGN.md).
    assert_eq!(c.report.stats.contiguous_events, 0);
}

#[test]
fn phase_timer_rows_have_sane_percentages() {
    let c = compile(STENCIL, &CompileOptions::default()).unwrap();
    for (name, _, pct) in c.report.timers.rows() {
        assert!(
            (0.0..=100.5).contains(&pct),
            "phase {name} has {pct}% of total"
        );
    }
}
