//! End-to-end correctness: programs compiled to SPMD and executed on the
//! simulator must produce bit-identical arrays and reduction scalars to the
//! serial reference interpreter, for every processor count.

use dhpf::core::{compile, CompileOptions};
use dhpf::sim::{run_serial, simulate, MachineModel};
use std::collections::HashMap;

fn check(src: &str, grids: &[&[i64]], inputs: &[(&str, i64)]) {
    let inputs: HashMap<String, i64> = inputs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let compiled = compile(src, &CompileOptions::default()).unwrap_or_else(|e| {
        panic!("compile failed: {e}");
    });
    let (serial, _) = run_serial(&compiled.analysis, &inputs).unwrap();
    for grid in grids {
        let result = simulate(&compiled, grid, &inputs, &MachineModel::sp2())
            .unwrap_or_else(|e| panic!("simulate {grid:?} failed: {e}"));
        for (name, want) in &serial.arrays {
            let got = &result.arrays[name];
            assert_eq!(got.dims, want.dims, "{name} dims, grid {grid:?}");
            for (k, (g, w)) in got.data.iter().zip(&want.data).enumerate() {
                assert!(
                    (g - w).abs() < 1e-9,
                    "array {name}[linear {k}] differs on grid {grid:?}: got {g}, want {w}"
                );
            }
        }
        for (name, want) in &serial.floats {
            let got = result.floats.get(name).copied().unwrap_or(f64::NAN);
            assert!(
                (got - want).abs() < 1e-9 * want.abs().max(1.0),
                "scalar {name} differs on grid {grid:?}: got {got}, want {want}"
            );
        }
    }
}

/// 1-D shift with BLOCK distribution and a fixed processor count.
#[test]
fn shift_block_fixed() {
    check(
        "
program shift
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 100
  b(i) = i * 1.0
enddo
do i = 1, 99
  a(i) = b(i+1) + 0.5
enddo
end
",
        &[&[4]],
        &[],
    );
}

/// Same shift with a *symbolic* processor count (virtual-processor model).
#[test]
fn shift_block_symbolic() {
    check(
        "
program shiftsym
real a(100), b(100)
!HPF$ processors p(number_of_processors())
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 100
  b(i) = i * 1.0
enddo
do i = 1, 99
  a(i) = b(i+1)
enddo
end
",
        &[&[1], &[2], &[4], &[8]],
        &[],
    );
}

/// 2-D Jacobi stencil over a (BLOCK, *) distribution with a time loop.
#[test]
fn jacobi_block_star() {
    check(
        "
program jacobi
real a(32,32), b(32,32)
integer iter
!HPF$ processors p(number_of_processors())
!HPF$ template t(32,32)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do i = 1, 32
  do j = 1, 32
    b(i,j) = i + 100*j
    a(i,j) = 0.0
  enddo
enddo
do iter = 1, 3
  do i = 2, 31
    do j = 2, 31
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
  do i = 2, 31
    do j = 2, 31
      b(i,j) = a(i,j)
    enddo
  enddo
enddo
end
",
        &[&[1], &[2], &[4]],
        &[],
    );
}

/// Reductions (sum and max) over a distributed array.
#[test]
fn reductions_match_serial() {
    check(
        "
program red
real a(64)
real s, mx
!HPF$ processors p(number_of_processors())
!HPF$ template t(64)
!HPF$ align a(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 64
  a(i) = i * 0.5
enddo
s = 0.0
mx = -1.0e30
do i = 1, 64
  s = s + a(i)
  mx = max(mx, a(i))
enddo
end
",
        &[&[1], &[2], &[4]],
        &[],
    );
}

/// Pipelined recurrence: loop-carried dependence forces communication
/// inside the outer loop (ERLEBACHER-style).
#[test]
fn pipeline_recurrence() {
    check(
        "
program pipe
real a(24,24)
!HPF$ processors p(number_of_processors())
!HPF$ template t(24,24)
!HPF$ align a(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do i = 1, 24
  do j = 1, 24
    a(i,j) = i + 0.1 * j
  enddo
enddo
do i = 2, 24
  do j = 1, 24
    a(i,j) = a(i,j) + 0.5 * a(i-1,j)
  enddo
enddo
end
",
        &[&[1], &[2], &[4]],
        &[],
    );
}

/// Runtime problem size via `read`.
#[test]
fn runtime_sizes() {
    check(
        "
program rt
integer n
real a(100), b(100)
!HPF$ processors p(number_of_processors())
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
read *, n
do i = 1, n
  b(i) = i * 2.0
enddo
do i = 2, n
  a(i) = b(i-1) + b(i)
enddo
end
",
        &[&[1], &[3], &[4]],
        &[("n", 60)],
    );
}

/// ON_HOME with non-owner computes and non-local writes.
#[test]
fn non_owner_computes_write() {
    check(
        "
program nl
real a(40), b(40)
!HPF$ processors p(4)
!HPF$ template t(40)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 40
  b(i) = i * 1.0
enddo
do i = 1, 39
!HPF$ on_home b(i)
  a(i+1) = b(i) * 3.0
enddo
end
",
        &[&[4]],
        &[],
    );
}

/// Guarded (IF) statements inside a parallel nest.
#[test]
fn guarded_statements() {
    check(
        "
program g
real a(50), b(50)
!HPF$ processors p(number_of_processors())
!HPF$ template t(50)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 50
  b(i) = i * 1.0
enddo
do i = 1, 50
  if (b(i) > 25.0) then
    a(i) = b(i) * 2.0
  else
    a(i) = b(i)
  endif
enddo
end
",
        &[&[1], &[2], &[5]],
        &[],
    );
}

/// 2-D block-block distribution.
#[test]
fn block_block_2d() {
    check(
        "
program bb
real a(16,16), b(16,16)
!HPF$ processors p(2,2)
!HPF$ template t(16,16)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,block) onto p
do i = 1, 16
  do j = 1, 16
    b(i,j) = i * 100 + j
  enddo
enddo
do i = 2, 15
  do j = 2, 15
    a(i,j) = b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1)
  enddo
enddo
end
",
        &[&[2, 2]],
        &[],
    );
}

/// Cyclic distribution with a fixed processor count.
#[test]
fn cyclic_fixed() {
    check(
        "
program cyc
real a(32), b(32)
!HPF$ processors p(4)
!HPF$ template t(32)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(cyclic) onto p
do i = 1, 32
  b(i) = i * 1.0
enddo
do i = 1, 31
  a(i) = b(i+1)
enddo
end
",
        &[&[4]],
        &[],
    );
}
