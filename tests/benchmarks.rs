//! The benchmark programs themselves are correct: scaled-down variants of
//! each Figure-7 workload are compiled, simulated, and validated against
//! the serial reference interpreter.

use dhpf::core::{compile, CompileOptions};
use dhpf::sim::{run_serial, simulate, MachineModel};
use std::collections::HashMap;

const TOMCATV: &str = include_str!("../benchmarks/tomcatv.hpf");
const ERLEBACHER: &str = include_str!("../benchmarks/erlebacher.hpf");
const JACOBI: &str = include_str!("../benchmarks/jacobi.hpf");

fn validate(src: &str, grids: &[&[i64]], inputs: &[(&str, i64)]) {
    let inputs: HashMap<String, i64> = inputs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let compiled = compile(src, &CompileOptions::default()).expect("compile");
    let (serial, _) = run_serial(&compiled.analysis, &inputs).expect("serial");
    for grid in grids {
        let r = simulate(&compiled, grid, &inputs, &MachineModel::sp2())
            .unwrap_or_else(|e| panic!("simulate {grid:?}: {e}"));
        for (name, want) in &serial.arrays {
            let got = &r.arrays[name];
            for (k, (g, w)) in got.data.iter().zip(&want.data).enumerate() {
                assert!(
                    (g - w).abs() < 1e-9,
                    "{name}[{k}] differs on {grid:?}: {g} vs {w}"
                );
            }
        }
        for (name, want) in &serial.floats {
            let got = r.floats[name];
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "{name} differs on {grid:?}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn tomcatv_small_matches_serial() {
    let src = TOMCATV.replace("parameter (n = 257)", "parameter (n = 33)");
    validate(&src, &[&[1], &[3], &[4]], &[("niter", 2)]);
}

#[test]
fn erlebacher_small_matches_serial() {
    let src = ERLEBACHER.replace("parameter (n = 32, nz = 32)", "parameter (n = 12, nz = 12)");
    validate(&src, &[&[1], &[2], &[4]], &[]);
}

#[test]
fn jacobi_small_matches_serial() {
    let src = JACOBI.replace("parameter (n = 128)", "parameter (n = 24)");
    validate(&src, &[&[2, 1], &[2, 2]], &[("niter", 2)]);
}

#[test]
fn tomcatv_parallel_beats_serial_time() {
    let src = TOMCATV.replace("parameter (n = 257)", "parameter (n = 65)");
    let inputs: HashMap<String, i64> = [("niter".to_string(), 2i64)].into_iter().collect();
    let compiled = compile(&src, &CompileOptions::default()).expect("compile");
    let t1 = simulate(&compiled, &[1], &inputs, &MachineModel::sp2())
        .expect("P=1")
        .time;
    let t4 = simulate(&compiled, &[4], &inputs, &MachineModel::sp2())
        .expect("P=4")
        .time;
    assert!(
        t4 < t1,
        "4 processors must be faster than 1: t1={t1}, t4={t4}"
    );
    assert!(t1 / t4 > 1.5, "expected real speedup, got {}", t1 / t4);
}

#[test]
fn erlebacher_pipeline_sends_messages() {
    let src = ERLEBACHER.replace("parameter (n = 32, nz = 32)", "parameter (n = 12, nz = 12)");
    let compiled = compile(&src, &CompileOptions::default()).expect("compile");
    let r = simulate(&compiled, &[3], &HashMap::new(), &MachineModel::sp2()).expect("simulate");
    // Pipelined sweeps produce per-iteration messages: strictly more than
    // the two vectorized boundary exchanges would.
    assert!(
        r.messages > 4,
        "expected pipeline traffic, got {}",
        r.messages
    );
}
