//! Demonstrates Figure 4 loop splitting: the iterations of a partitioned
//! stencil loop are divided into local and non-local sections so that
//! communication overlaps the local computation, and non-local data can be
//! referenced directly from receive buffers without per-access checks.
//!
//! Run with: `cargo run --example loop_splitting`

use dhpf::core::spmd::{NestOp, SpmdItem};
use dhpf::core::{compile, CompileOptions};
use dhpf::sim::{simulate, MachineModel};
use dhpf_codegen::emit_fortran;
use std::collections::HashMap;

const SRC: &str = "
program stencil
integer n
real a(4100), b(4100)
!HPF$ processors p(number_of_processors())
!HPF$ template t(4100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
read *, n
do i = 1, n
  b(i) = i * 1.0
enddo
do i = 2, n-1
  a(i) = 0.5 * (b(i-1) + b(i+1))
enddo
end
";

fn main() {
    let with = CompileOptions::new().loop_splitting(true);
    let without = CompileOptions::new().loop_splitting(false);

    for (label, opts) in [("WITH splitting", &with), ("WITHOUT splitting", &without)] {
        let compiled = compile(SRC, opts).expect("compile");
        println!("== {label} ==");
        for item in &compiled.program.items {
            if let SpmdItem::Nest(n) = item {
                if n.ops
                    .iter()
                    .any(|op| matches!(op, NestOp::CommSend(_) | NestOp::CommRecv(_)))
                {
                    let txt = emit_fortran(&n.code, &|id| match &n.ops[id.0] {
                        NestOp::Assign(cs) => format!("{}(...) = <stencil>", cs.lhs),
                        NestOp::CommSend(e) => format!("SEND boundary (event {e})"),
                        NestOp::CommRecv(e) => format!("RECV boundary (event {e})"),
                    });
                    println!("{txt}");
                }
            }
        }
        // Timing: with splitting the receive is deferred past the local
        // iterations, overlapping the message latency.
        let inputs: HashMap<String, i64> = [("n".to_string(), 4096i64)].into_iter().collect();
        let r = simulate(&compiled, &[8], &inputs, &MachineModel::sp2()).expect("simulate");
        println!("simulated time on 8 processors: {:.6} s\n", r.time);
    }
}
