//! Reproduces the paper's Figure 5: active virtual processors for the
//! Gaussian-elimination loop on a (CYCLIC, CYCLIC) layout with a symbolic
//! number of processors.
//!
//! Run with: `cargo run --example gauss_vp`

use dhpf::core::{active_vp_sets, build_layouts, collect_statements, cp_map, CommRef};
use dhpf::hpf::{analyze, parse};

// The paper's Figure 5(b), with the guard folded into the loop bounds
// (dHPF folds IF conditions into iteration sets; our frontend keeps
// conditions as runtime guards, so the bounds carry the PIVOT constraint).
const SRC: &str = "
program gauss
real a(100,100)
integer pivot
!HPF$ processors pa(number_of_processors(), number_of_processors())
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i,j)
!HPF$ distribute t(cyclic,cyclic) onto pa
read *, pivot
do i = pivot + 1, 100
  do j = pivot + 1, 100
    a(i,j) = a(i,j) + a(pivot,j)
  enddo
enddo
end
";

fn main() {
    let prog = parse(SRC).expect("parse");
    let analysis = analyze(&prog.units[0]).expect("analyze");
    let layouts = build_layouts(&analysis);
    let stmts = collect_statements(&analysis);
    let s = &stmts[0];
    let cp = cp_map(s, &layouts);

    // The potentially non-local read is A(PIVOT, j).
    let pivot_read = s
        .reads
        .iter()
        .find(|r| r.subs[0].terms.iter().any(|(n, _)| n == "pivot"))
        .expect("pivot-row read");
    let rref = CommRef {
        cp_map: cp.clone(),
        ref_map: pivot_read.ref_map(&s.ctx),
    };
    let sets = active_vp_sets(&[rref], &[], &layouts["a"]).expect("exact VP sets");

    println!("== Figure 5: active virtual processors for the Gauss loop ==\n");
    println!("busyVPSet       = {}\n", sets.busy);
    println!("activeSendVPSet = {}\n", sets.active_send);
    println!("activeRecvVPSet = {}\n", sets.active_recv);

    // The paper's results, checked pointwise with PIVOT = 40:
    //   busyVPSet        = {[v1,v2] : PIVOT <  v1,v2 <= 100}
    //   activeSendVPSet  = {[v1,v2] : v1 = PIVOT && PIVOT < v2 <= 100}
    //   activeRecvVPSet  = busyVPSet
    let p = [("pivot", 40i64)];
    assert!(sets.busy.contains(&[41, 41], &p));
    assert!(!sets.busy.contains(&[40, 41], &p));
    assert!(sets.active_send.contains(&[40, 41], &p));
    assert!(!sets.active_send.contains(&[41, 41], &p));
    assert!(sets.active_recv.equal(&sets.busy));
    println!("All Figure 5 membership checks passed:");
    println!("  - only VPs in the lower-right submatrix are busy;");
    println!("  - only VPs owning the pivot row send;");
    println!("  - every busy VP receives.");
}
