//! Reproduces the paper's Figure 2: construction of the primitive sets and
//! mappings (`Align`, `Dist`, `Layout`, `loop`, `RefMap`, `CPMap`) for the
//! example HPF fragment, and checks them against the published formulas.
//!
//! Run with: `cargo run --example figure2`

use dhpf::core::{build_layouts_in, collect_statements, cp_map};
use dhpf::hpf::{analyze, parse};
use dhpf_omega::Context;

const SRC: &str = "
program fig2
real a(0:99,100), b(100,100)
integer n
!HPF$ processors p(4)
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i+1,j)
!HPF$ align b(i,j) with t(*,i)
!HPF$ distribute t(*,block) onto p
read *, n
do i = 1, n
  do j = 2, n+1
!HPF$ on_home b(j-1,i)
    a(i,j) = b(j-1,i)
  enddo
enddo
end
";

fn main() {
    let prog = parse(SRC).expect("parse");
    let analysis = analyze(&prog.units[0]).expect("analyze");
    // One shared Omega context: every set built from these layouts reuses
    // its hash-consed conjuncts and memoized simplifications.
    let ctx = Context::new();
    let layouts = build_layouts_in(&analysis, Some(&ctx));
    let stmts = collect_statements(&analysis);
    let s = &stmts[0];

    println!("== Figure 2: primitive sets and mappings ==\n");

    // proc, built with the fluent API (equivalently: ctx.parse_set(...)).
    let proc = ctx
        .set(1)
        .names(["p"])
        .constrain(|c| c.bounds(&c.dim(0), 0, 3))
        .build();
    println!("proc  = {proc}  (0-based in this implementation)\n");
    assert!(proc.contains(&[3], &[]) && !proc.contains(&[4], &[]));

    // Layout_A: the paper's
    //   {[p] -> [a1,a2] : max(25p+1,1) <= a2 <= min(25p+25,100), 0 <= a1 <= 99}
    // (t2 = a2 after align A(i,j) -> T(i+1,j), distribute (*, BLOCK)).
    println!("Layout_A = {}\n", layouts["a"].rel);
    let la = &layouts["a"].rel;
    assert!(la.contains_pair(&[1], &[0, 26], &[]));
    assert!(!la.contains_pair(&[1], &[0, 25], &[]));
    assert!(!la.contains_pair(&[1], &[0, 51], &[]));

    // Layout_B: align B(i,j) -> T(*, i):
    //   {[p] -> [b1,b2] : max(25p+1,1) <= b1 <= min(25p+25,100)}
    println!("Layout_B = {}\n", layouts["b"].rel);
    let lb = &layouts["b"].rel;
    assert!(lb.contains_pair(&[2], &[51, 1], &[]));
    assert!(!lb.contains_pair(&[2], &[76, 1], &[]));

    // loop = {[l1,l2] : 1 <= l1 <= N && 2 <= l2 <= N+1}
    let loop_set = s.ctx.iteration_set();
    println!("loop  = {loop_set}\n");
    assert!(loop_set.contains(&[1, 2], &[("n", 60)]));
    assert!(!loop_set.contains(&[0, 2], &[("n", 60)]));
    assert!(loop_set.contains(&[60, 61], &[("n", 60)]));

    // CPRef/RefMap of the ON_HOME term B(j-1, i):
    //   {[l1,l2] -> [b1,b2] : b1 = l2 - 1 && b2 = l1}
    let refmap = s.on_home[0].ref_map(&s.ctx);
    println!("RefMap(B(j-1,i)) = {refmap}\n");
    assert!(refmap.contains_pair(&[3, 7], &[6, 3], &[]));

    // CPMap = Layout_B ∘ RefMap⁻¹ ∩range loop; the paper's result:
    //   {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) &&
    //                     max(2, 25p+2) <= l2 <= min(N+1, 101, 25p+26)}
    let cp = cp_map(s, &layouts);
    println!("CPMap = {cp}\n");
    let n = [("n", 60i64)];
    assert!(cp.contains_pair(&[0], &[1, 2], &n));
    assert!(cp.contains_pair(&[0], &[1, 26], &n));
    assert!(!cp.contains_pair(&[0], &[1, 27], &n));
    assert!(cp.contains_pair(&[1], &[60, 51], &n));
    assert!(!cp.contains_pair(&[1], &[60, 52], &n));
    assert!(!cp.contains_pair(&[1], &[61, 51], &n));

    println!("All Figure 2 membership checks passed.");
    let stats = ctx.stats();
    println!(
        "omega cache: {} hits / {} misses ({} conjuncts interned)",
        stats.total_hits(),
        stats.total_misses(),
        stats.interned_conjuncts
    );
}
