//! Quickstart: compile a small HPF program, inspect the integer sets the
//! compiler derives, look at the generated SPMD code, and run it on the
//! simulated message-passing machine.
//!
//! Run with: `cargo run --example quickstart`

use dhpf::core::spmd::{NestOp, SpmdItem};
use dhpf::core::{build_layouts_in, collect_statements, comm_sets, cp_map, myid_set, CommRef};
use dhpf::core::{compile, CompileOptions};
use dhpf::hpf::{analyze, parse};
use dhpf::sim::{run_serial, simulate, MachineModel};
use dhpf_codegen::emit_fortran;
use dhpf_omega::Context;
use std::collections::HashMap;

const SRC: &str = "
program quick
real a(100), b(100)
!HPF$ processors p(number_of_processors())
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 100
  b(i) = i * 1.0
enddo
do i = 1, 99
  a(i) = b(i+1) + b(i)
enddo
end
";

fn main() {
    // --- 1. Frontend: parse + analyze ---------------------------------
    let prog = parse(SRC).expect("parse");
    let analysis = analyze(&prog.units[0]).expect("analyze");
    println!("arrays: {:?}\n", analysis.arrays.keys().collect::<Vec<_>>());

    // --- 2. The integer sets behind the analysis ----------------------
    // All Omega operations share one Context: conjuncts are hash-consed
    // and simplification / satisfiability results are memoized.
    let ctx = Context::new();

    // Sets can be parsed (with real errors, not panics) ...
    let halo = ctx
        .parse_set("{[i] : 1 <= i <= 2 || 99 <= i <= 100}")
        .expect("valid set syntax");
    // ... or assembled with the fluent builder.
    let interior = ctx
        .set(1)
        .names(["i"])
        .constrain(|c| c.bounds(&c.dim(0), 3, 98))
        .build();
    assert!(halo.intersection(&interior).is_empty());

    let layouts = build_layouts_in(&analysis, Some(&ctx));
    println!(
        "Layout of b (virtual-processor BLOCK):\n  {}\n",
        layouts["b"].rel
    );
    let stmts = collect_statements(&analysis);
    let shift = &stmts[1]; // a(i) = b(i+1) + b(i)
    let cp = cp_map(shift, &layouts);
    println!("CPMap (owner-computes on a(i)):\n  {cp}\n");
    let mine = cp.apply(&myid_set(1));
    println!("Iterations of the representative processor m:\n  {mine}\n");
    let refs: Vec<CommRef> = shift
        .reads
        .iter()
        .map(|r| CommRef {
            cp_map: cp.clone(),
            ref_map: r.ref_map(&shift.ctx),
        })
        .collect();
    let sets = comm_sets(&refs, &[], &layouts["b"]).expect("comm analysis is exact here");
    println!(
        "RecvCommMap(m) — coalesced for both reads of b:\n  {}\n",
        sets.recv_map
    );

    // --- 3. Compile to an SPMD program ---------------------------------
    // The driver creates its own shared context (CompileOptions::use_cache,
    // on by default) and reports the cache counters.
    let compiled = compile(SRC, &CompileOptions::default()).expect("compile");
    let cache = &compiled.report.cache;
    println!(
        "omega cache during compilation: {} hits / {} misses ({:.0}% hit rate)\n",
        cache.total_hits(),
        cache.total_misses(),
        100.0 * cache.hit_rate()
    );
    for item in &compiled.program.items {
        if let SpmdItem::Nest(n) = item {
            println!("generated SPMD nest (split = {}):", n.split);
            let txt = emit_fortran(&n.code, &|id| match &n.ops[id.0] {
                NestOp::Assign(cs) => format!("{} = {}", cs.lhs, cs.rhs_summary()),
                NestOp::CommSend(e) => format!("call dhpf_send(event {e})"),
                NestOp::CommRecv(e) => format!("call dhpf_recv(event {e})"),
            });
            println!("{txt}");
        }
    }

    // --- 4. Run on the simulated machine -------------------------------
    let inputs = HashMap::new();
    let (serial, _) = run_serial(&compiled.analysis, &inputs).expect("serial");
    for p in [1i64, 2, 4, 8] {
        let r = simulate(&compiled, &[p], &inputs, &MachineModel::sp2()).expect("simulate");
        // Validate one element against the serial oracle.
        assert_eq!(r.arrays["a"].get(&[50]), serial.arrays["a"].get(&[50]));
        println!(
            "P = {p}: simulated time {:.6} s, {} messages, {} bytes",
            r.time, r.messages, r.bytes
        );
    }
    println!("\nAll results match the serial oracle.");
}

/// A small display helper for the example.
trait RhsSummary {
    fn rhs_summary(&self) -> String;
}

impl RhsSummary for dhpf::core::spmd::CompiledStmt {
    fn rhs_summary(&self) -> String {
        format!("<rhs with {} flops>", self.cost)
    }
}
