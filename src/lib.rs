//! dhpf — a reproduction of the Rice dHPF compiler (PLDI 1998).
//!
//! Re-exports the workspace crates under one roof:
//! - [`omega`] — integer tuple sets and relations (the Omega-library substrate)
//! - [`codegen`] — multiple-mapping loop-nest code generation
//! - [`hpf`] — the mini-Fortran/HPF frontend
//! - [`core`] — the dHPF analyses and optimizations
//! - [`sim`] — the SPMD message-passing simulator
pub use dhpf_codegen as codegen;
pub use dhpf_core as core;
pub use dhpf_hpf as hpf;
pub use dhpf_omega as omega;
pub use dhpf_sim as sim;
